#ifndef XRPC_FUZZ_GENERATOR_H_
#define XRPC_FUZZ_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/prng.h"

namespace xrpc::fuzz {

/// A generated query fragment. Rendering concatenates the pieces in order;
/// a piece is either literal text or a reference into `children`. The tree
/// structure (rather than a flat string) is what makes hierarchical
/// test-case minimization possible: any subtree that declares a `reduced`
/// form can be swapped for it without breaking XQuery syntax.
class GenNode {
 public:
  struct Piece {
    std::string text;  ///< literal fragment (used when child < 0)
    int child = -1;    ///< index into children (used when >= 0)
  };

  std::vector<Piece> pieces;
  std::vector<std::unique_ptr<GenNode>> children;

  /// A syntactically valid, strictly simpler replacement for this subtree
  /// ("1", "()", "\"x\"", ...). Empty = not reducible as a unit, unless
  /// `droppable` marks the empty string itself as the valid replacement
  /// (e.g. a whole predicate "[...]" can vanish).
  std::string reduced;
  bool droppable = false;

  /// When set, minimization replaced this node: Render() emits `reduced`
  /// and ignores pieces/children.
  bool collapsed = false;

  /// Renders the fragment this subtree stands for.
  std::string Render() const;

  /// Appends a literal piece.
  void Lit(std::string text);

  /// Appends (and owns) a child piece.
  GenNode* Add(std::unique_ptr<GenNode> child);

  /// Pre-order walk over all non-collapsed descendants (including this).
  void Walk(const std::function<void(GenNode*)>& fn);
};

/// Knobs of the random query generator.
struct GeneratorConfig {
  uint64_t seed = 1;
  int max_depth = 4;
  /// Fraction of generated queries that are XQUF updating queries.
  double update_ratio = 0.15;
  /// Generate `execute at` calls against peer "B" (requires the fixture's
  /// functions_b/test modules to be importable).
  bool allow_rpc = true;
  /// Fraction of queries importing + calling remote module functions.
  double rpc_ratio = 0.35;
};

/// One generated query: the reducible fragment tree plus metadata.
struct GeneratedQuery {
  std::unique_ptr<GenNode> root;
  bool updating = false;   ///< contains XQUF update syntax
  uint64_t seed = 0;       ///< generator state that produced this query
  int index = 0;           ///< ordinal in the generator's output stream

  std::string Text() const { return root->Render(); }
};

/// Seeded random XQuery generator biased toward the XMark schema split of
/// Section 5 (persons.xml at the local peer, auctions.xml at peer B) plus
/// the film database of Section 2. Every query it emits parses under
/// src/xquery and — apart from deliberate interpreter-only constructs —
/// stays inside the loop-lifted relational subset, so the differential
/// harness exercises genuinely different execution paths.
///
/// Determinism: the whole stream is a pure function of `config.seed`; query
/// k of a given seed is identical across runs and platforms
/// (DeterministicPrng, no global state).
class QueryGenerator {
 public:
  explicit QueryGenerator(const GeneratorConfig& config);

  /// Generates the next query in the stream.
  GeneratedQuery Next();

  /// Prolog text (module imports) every generated query may rely on; the
  /// differential fixture registers these modules on both networks.
  static std::string FixturePrologue();

 private:
  struct Scope;  // in-scope variables during generation

  // Each Gen* returns a fragment tree for one grammar production.
  std::unique_ptr<GenNode> GenQueryBody(bool updating, bool with_rpc);
  std::unique_ptr<GenNode> GenExpr(int depth, Scope* scope);
  std::unique_ptr<GenNode> GenFlwor(int depth, Scope* scope);
  std::unique_ptr<GenNode> GenQuantified(int depth, Scope* scope);
  std::unique_ptr<GenNode> GenIf(int depth, Scope* scope);
  std::unique_ptr<GenNode> GenPath(int depth, Scope* scope);
  std::unique_ptr<GenNode> GenPredicate(int depth, Scope* scope,
                                        const std::string& elem);
  std::unique_ptr<GenNode> GenComparison(int depth, Scope* scope);
  std::unique_ptr<GenNode> GenArith(int depth, Scope* scope);
  std::unique_ptr<GenNode> GenStringExpr(int depth, Scope* scope);
  std::unique_ptr<GenNode> GenAggregate(int depth, Scope* scope);
  std::unique_ptr<GenNode> GenConstructor(int depth, Scope* scope);
  std::unique_ptr<GenNode> GenExecuteAt(int depth, Scope* scope);
  std::unique_ptr<GenNode> GenUpdate(Scope* scope);
  std::unique_ptr<GenNode> GenAtomic(Scope* scope);

  uint64_t Below(uint64_t n) { return n == 0 ? 0 : prng_.NextUint64() % n; }
  bool Chance(double p) { return prng_.NextDouble() < p; }

  GeneratorConfig config_;
  DeterministicPrng prng_;
  int next_index_ = 0;
  int var_counter_ = 0;  ///< fresh variable names per query
};

}  // namespace xrpc::fuzz

#endif  // XRPC_FUZZ_GENERATOR_H_
