#include "fuzz/chaos.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "base/prng.h"
#include "core/peer_network.h"
#include "net/circuit_breaker.h"
#include "xdm/item.h"
#include "xml/serializer.h"
#include "xmark/shard_loader.h"
#include "xmark/xmark.h"

namespace xrpc::fuzz {

namespace {

constexpr int kNumShards = 3;

/// The fixed workload: a broadcast over every shard, so the survival of
/// the query depends on every shard having a reachable copy.
constexpr char kChaosQuery[] =
    "import module namespace b=\"functions_b\" at \"b.xq\";\n"
    "execute at {\"shard:auctions.xml\"} {b:Q_B1()}";

/// Mid-schedule write (DESIGN.md §17): each shard peer resolves
/// doc("auctions.xml") through its pinned shard scope, so the insert lands
/// on the exact fragment the call was routed to — at EVERY copy, since an
/// updating broadcast enlists the whole replica set in the 2PC. The stamp
/// element sits outside every path the read queries navigate, so the read
/// baseline is unchanged while the fragment bytes provably are.
constexpr char kUpdateModule[] = R"(
  module namespace u = "upd_chaos";
  declare updating function u:stamp()
  { insert nodes <chaos-stamp/> into doc("auctions.xml")/site };
)";

constexpr char kUpdateQuery[] =
    "declare option xrpc:isolation \"repeatable\";\n"
    "declare option xrpc:timeout \"60\";\n"
    "import module namespace u=\"upd_chaos\" at \"u.xq\";\n"
    "execute at {\"shard:auctions.xml\"} {u:stamp()}";

/// Serialized bytes of one fragment as a peer currently stores it — the
/// unit the replica-convergence invariant compares.
std::string FragmentBytes(core::Peer* peer, const std::string& doc) {
  auto d = peer->database().GetDocument(doc);
  if (!d.ok()) return "<missing: " + d.status().ToString() + ">";
  return xml::SerializeNode(*d.value());
}

std::string AuctionsFragName(int shard) {
  return "auctions.xml." + std::to_string(shard);
}

/// Virtual-time budget of every run; chaos must resolve — success or one
/// clean fault — within it. Generous: a healthy broadcast costs ~1 ms.
constexpr int64_t kDeadlineBudgetUs = 5'000'000;
/// The final message of a run may complete past the budget before the
/// expiry is observed; allow one round of wire slack beyond it.
constexpr int64_t kDeadlineSlackUs = 1'000'000;

xmark::XmarkConfig ChaosXmarkConfig() {
  xmark::XmarkConfig cfg;
  cfg.num_persons = 18;
  cfg.num_closed_auctions = 24;
  cfg.num_matches = 4;
  cfg.annotation_bytes = 8;
  return cfg;
}

/// SplitMix-style mix (same construction as the schedule explorer) so
/// every (seed, index) pair gets an independent sampled-dimension stream.
uint64_t MixSeed(uint64_t seed, int index) {
  uint64_t x =
      seed + 0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(index) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  return x;
}

struct Fixture {
  core::PeerNetwork net;
  std::vector<core::Peer*> shard_peers;
  core::Peer* p0 = nullptr;
  Status status = Status::OK();

  Fixture(int replication_factor, bool sabotage) {
    xmark::ShardLoadOptions opts;
    opts.num_shards = kNumShards;
    opts.replication_factor = replication_factor;
    auto loaded = xmark::LoadShardedXmark(&net, ChaosXmarkConfig(), opts);
    if (!loaded.ok()) {
      status = loaded.status();
      return;
    }
    shard_peers = loaded->peers;
    p0 = net.AddPeer("p0", core::EngineKind::kRelational);
    status = p0->RegisterModule(xmark::FunctionsBModuleSource(p0->uri()),
                                "b.xq");
    for (core::Peer* p : shard_peers) {
      if (!status.ok()) break;
      status = p->RegisterModule(kUpdateModule, "u.xq");
    }
    if (status.ok()) status = p0->RegisterModule(kUpdateModule, "u.xq");
    if (sabotage) {
      // Replace shard 0's primary fragment with an empty one: any run
      // that answers from it diverges from the baseline, so the
      // byte-identity detector must fire.
      (void)shard_peers[0]->AddDocument(
          "auctions.xml.0", "<site><closed_auctions/></site>");
    }
  }
};

}  // namespace

bool ChaosSchedule::Covered(int num_shards) const {
  for (int k = 0; k < num_shards; ++k) {
    bool alive = false;
    for (int r = 0; r < replication_factor && !alive; ++r) {
      alive = (kill_mask & (1u << ((k + r) % num_shards))) == 0;
    }
    if (!alive) return false;
  }
  return true;
}

std::string ChaosSchedule::Describe() const {
  std::string out = "rf=" + std::to_string(replication_factor);
  if (kill_mask != 0) {
    out += " kill={";
    for (int k = 0; k < kNumShards; ++k) {
      if (kill_mask & (1u << k)) out += std::to_string(k);
    }
    out += "}@" + std::to_string(kill_serial);
    if (revive_serial > 0) out += " revive@" + std::to_string(revive_serial);
  }
  if (bump_serial > 0) out += " bump@" + std::to_string(bump_serial);
  if (use_breaker) out += " breaker=on";
  out += Covered(kNumShards) ? " [covered]" : " [uncovered]";
  return out;
}

ChaosExplorer::ChaosExplorer(const ChaosConfig& config) : config_(config) {
  // Chaos-free reference run: its normalized result is the byte-identity
  // baseline every surviving run must reproduce, regardless of which
  // replicas answered. Deliberately built WITHOUT sabotage.
  Fixture fx(/*replication_factor=*/1, /*sabotage=*/false);
  if (fx.status.ok()) {
    auto report = fx.net.Execute("p0", kChaosQuery);
    if (report.ok()) baseline_ = xdm::SequenceToString(report->result);
    for (int k = 0; k < kNumShards; ++k) {
      frag_baseline_.push_back(
          FragmentBytes(fx.shard_peers[k], AuctionsFragName(k)));
    }
    // The chaos-free SERIAL update: what every copy of every fragment must
    // converge to whenever a mid-schedule 2PC commits.
    auto upd = fx.net.Execute("p0", kUpdateQuery);
    if (upd.ok() && upd->committed) {
      auto again = fx.net.Execute("p0", kChaosQuery);
      if (again.ok()) {
        baseline_updated_ = xdm::SequenceToString(again->result);
      }
      for (int k = 0; k < kNumShards; ++k) {
        frag_updated_.push_back(
            FragmentBytes(fx.shard_peers[k], AuctionsFragName(k)));
      }
    }
  }
}

ChaosExplorer::~ChaosExplorer() = default;

// Grid dimensions: rf {1,2} x kill {none,0,1,01} x kill instant {pre,2,4}
// x revive {never, kill+3} x bump {off,3} x breaker {off,on}.
constexpr int kKillMasks[] = {0, 1, 2, 3};
constexpr int kKillSerials[] = {0, 2, 4};

int ChaosExplorer::GridSize() const { return 2 * 4 * 3 * 2 * 2 * 2; }

ChaosSchedule ChaosExplorer::MakeSchedule(int index) const {
  ChaosSchedule s;
  s.seed = config_.seed;
  s.index = index;

  if (index < GridSize()) {
    int k = index;
    s.replication_factor = 1 + k % 2;
    k /= 2;
    s.kill_mask = static_cast<uint32_t>(kKillMasks[k % 4]);
    k /= 4;
    s.kill_serial = kKillSerials[k % 3];
    k /= 3;
    if ((k % 2) == 1 && s.kill_mask != 0) {
      s.revive_serial = s.kill_serial + 3;
    }
    k /= 2;
    if ((k % 2) == 1) s.bump_serial = 3;
    k /= 2;
    s.use_breaker = (k % 2) == 1;
    if (s.kill_mask == 0) s.kill_serial = 0;  // canonicalize no-kill points
    return s;
  }

  // Sampled region: wider ranges, including kill-everything masks and
  // replication factor 3 (every peer holds every fragment).
  DeterministicPrng prng(MixSeed(config_.seed, index));
  auto below = [&prng](uint64_t n) {
    return static_cast<int>(prng.NextUint64() % n);
  };
  s.replication_factor = 1 + below(3);
  s.kill_mask = static_cast<uint32_t>(below(8));
  if (s.kill_mask != 0) {
    s.kill_serial = below(7);
    if (below(2) == 0) s.revive_serial = s.kill_serial + 1 + below(4);
  }
  if (below(2) == 0) s.bump_serial = 1 + below(5);
  s.use_breaker = below(2) == 0;
  return s;
}

ChaosResult ChaosExplorer::RunSchedule(const ChaosSchedule& schedule) {
  ChaosResult r;
  r.schedule = schedule;
  r.covered = schedule.Covered(kNumShards);
  ++stats_.explored;

  auto fail = [&r](const std::string& invariant, const std::string& detail) {
    r.ok = false;
    r.violations.push_back(invariant + ": " + detail);
  };

  Fixture fx(schedule.replication_factor, config_.sabotage_divergence);
  if (!fx.status.ok()) {
    fail("fixture", fx.status.ToString());
    ++stats_.violations;
    return r;
  }
  if (schedule.use_breaker) {
    net::CircuitBreaker::Policy policy;
    policy.failure_threshold = 2;
    policy.cooldown_us = 200'000;
    fx.net.EnableCircuitBreaker(policy);
  }

  auto apply_kill = [&] {
    for (int k = 0; k < kNumShards; ++k) {
      if (schedule.kill_mask & (1u << k)) fx.shard_peers[k]->Disconnect();
    }
  };
  if (schedule.kill_mask != 0 && schedule.kill_serial == 0) apply_kill();
  fx.net.network().set_post_hook([&](int64_t serial) {
    if (schedule.kill_mask != 0 && schedule.kill_serial > 0 &&
        serial == schedule.kill_serial) {
      apply_kill();
    }
    if (schedule.kill_mask != 0 && schedule.revive_serial > 0 &&
        serial == schedule.revive_serial) {
      for (int k = 0; k < kNumShards; ++k) {
        if (schedule.kill_mask & (1u << k)) fx.shard_peers[k]->Reconnect();
      }
    }
    if (schedule.bump_serial > 0 && serial == schedule.bump_serial) {
      // Identical re-registration: only the version moves, so a fenced
      // query re-routes once and then MUST succeed on the same shard map.
      core::ShardedCollection c;
      int64_t version = 0;
      if (fx.net.catalog().Snapshot("persons.xml", &c, &version)) {
        (void)fx.net.catalog().RegisterCollection(std::move(c));
      }
    }
  });

  // Mid-schedule write (config.with_updates): the updating broadcast runs
  // FIRST under the armed chaos schedule, so kills, revives, and catalog
  // bumps land mid-2PC. Which baseline the later read (and the convergence
  // check) must match depends on the commit outcome — all-or-nothing means
  // there is no third possibility.
  if (config_.with_updates) {
    if (frag_updated_.size() != static_cast<size_t>(kNumShards)) {
      fail("fixture", "no chaos-free updated baseline available");
      ++stats_.violations;
      return r;
    }
    core::ExecuteOptions update_options;
    update_options.deadline_us = kDeadlineBudgetUs;
    const int64_t u_start = fx.net.network().clock().NowMicros();
    auto upd = fx.net.Execute("p0", kUpdateQuery, update_options);
    const int64_t u_elapsed =
        fx.net.network().clock().NowMicros() - u_start;
    r.update_ran = true;
    if (upd.ok() && upd->committed) {
      r.update_committed = true;
      ++stats_.updates_committed;
    } else {
      ++stats_.updates_aborted;
      // 7. Update-survival: with no kills and no catalog bump scheduled,
      //    nothing may abort the write (all copies reachable throughout).
      //    A racing bump is a legitimate abort: an updating broadcast
      //    never re-dispatches after the StaleCatalog fence — destinations
      //    that accepted the first attempt already staged the call, so a
      //    re-route would commit them twice.
      if (schedule.kill_mask == 0 && schedule.bump_serial == 0) {
        fail("update-survival",
             "update failed with no kills scheduled: " +
                 (upd.ok() ? upd->abort_reason : upd.status().ToString()));
      }
    }
    // 4. No-hang applies to the write as well.
    if (u_elapsed > kDeadlineBudgetUs + kDeadlineSlackUs) {
      fail("no-hang", "update consumed " + std::to_string(u_elapsed) +
                          "us of a " + std::to_string(kDeadlineBudgetUs) +
                          "us budget");
    }
  }
  const std::string& want_result =
      r.update_committed ? baseline_updated_ : baseline_;

  const int64_t start_us = fx.net.network().clock().NowMicros();
  const int64_t reroutes_before = fx.net.metrics().stale_catalog_reroutes();
  core::ExecuteOptions exec_options;
  exec_options.deadline_us = kDeadlineBudgetUs;
  auto report = fx.net.Execute("p0", kChaosQuery, exec_options);
  r.elapsed_us = fx.net.network().clock().NowMicros() - start_us;
  r.failover_successes = fx.net.metrics().failover_successes();
  r.stale_reroutes =
      fx.net.metrics().stale_catalog_reroutes() - reroutes_before;
  stats_.failover_successes += r.failover_successes;
  stats_.stale_reroutes += r.stale_reroutes;

  if (report.ok()) {
    r.query_ok = true;
    r.outcome = xdm::SequenceToString(report->result);
    ++stats_.survived;
    // 1. Byte-identity: whichever replicas answered, the merged result is
    //    indistinguishable from the chaos-free run (with the update folded
    //    in iff its 2PC committed).
    if (r.outcome != want_result) {
      fail("byte-identity",
           "result diverges from the chaos-free baseline (got " +
               std::to_string(r.outcome.size()) + " bytes, want " +
               std::to_string(want_result.size()) + ")");
    }
  } else {
    r.outcome = report.status().ToString();
    const StatusCode code = report.status().code();
    // 2. Replica-coverage: with a live copy of every shard the query has
    //    no excuse to fail — failover must have found it. (A never-killed
    //    copy is never stale either: all-copies commit reached it.)
    if (r.covered) {
      fail("replica-coverage",
           "failed although live replicas cover every shard: " + r.outcome);
    }
    // 3. Clean-fault: an uncovered loss surfaces as one retriable-class
    //    fault, nothing half-merged or internal. With a mid-schedule write,
    //    kStaleReplica joins the class: an in-doubt or lagging copy
    //    correctly refuses to serve until repaired.
    if (code != StatusCode::kNetworkError &&
        code != StatusCode::kDeadlineExceeded &&
        !(r.update_ran && code == StatusCode::kStaleReplica)) {
      fail("clean-fault", "unexpected fault class: " + r.outcome);
    } else if (r.ok) {
      ++stats_.clean_faults;
    }
  }
  // 4. No-hang: chaos or not, the query resolves within its budget.
  if (r.elapsed_us > kDeadlineBudgetUs + kDeadlineSlackUs) {
    fail("no-hang", "query consumed " + std::to_string(r.elapsed_us) +
                        "us of a " + std::to_string(kDeadlineBudgetUs) +
                        "us budget");
  }
  // 5. Single-reroute: one epoch fence means one refetch + re-dispatch.
  if (r.stale_reroutes > 1) {
    fail("single-reroute",
         std::to_string(r.stale_reroutes) + " catalog re-routes in one query");
  }

  // 6. Replica-convergence, after quiesce: stop firing events, heal every
  //    partition, drain in-doubt 2PC state (coordinator retry first, then
  //    each peer's inquiry + anti-entropy repair) — after which EVERY copy
  //    of every auctions fragment must be byte-identical to the chaos-free
  //    serial state. Not merely "all copies agree": agreeing on a wrong
  //    state (e.g. a torn or double-applied PUL) must fire too.
  fx.net.network().set_post_hook(nullptr);
  if (config_.sabotage_primary_only_write) {
    // Self-test: a write that bypasses 2PC and versioning touches only the
    // primary. Repair sees no version lag, so it must NOT mask the
    // divergence — the convergence detector has to fire.
    (void)fx.shard_peers[0]->AddDocument(
        AuctionsFragName(0),
        "<site><closed_auctions><sabotaged/></closed_auctions></site>");
  }
  for (int k = 0; k < kNumShards; ++k) {
    if (schedule.kill_mask & (1u << k)) fx.shard_peers[k]->Reconnect();
  }
  (void)fx.p0->service().RetryInDoubt(&fx.net.network());
  for (core::Peer* p : fx.shard_peers) (void)p->Repair();
  const std::vector<std::string>& want_frags =
      r.update_committed ? frag_updated_ : frag_baseline_;
  if (want_frags.size() == static_cast<size_t>(kNumShards)) {
    for (int k = 0; k < kNumShards; ++k) {
      for (int c = 0; c < schedule.replication_factor; ++c) {
        core::Peer* holder = fx.shard_peers[(k + c) % kNumShards];
        const std::string got = FragmentBytes(holder, AuctionsFragName(k));
        if (got != want_frags[k]) {
          fail("replica-convergence",
               "copy " + std::to_string(c) + " of shard " +
                   std::to_string(k) + " (at " + holder->name() +
                   ") diverges from the chaos-free serial state after "
                   "quiesce+repair (" + std::to_string(got.size()) +
                   " bytes, want " + std::to_string(want_frags[k].size()) +
                   ")");
          break;  // one violation per shard is enough signal
        }
      }
    }
  }

  if (!r.ok) ++stats_.violations;
  return r;
}

std::string FormatChaosRepro(const ChaosResult& r) {
  std::string out;
  out += "# xrpc-fuzz chaos repro\n";
  out += "seed: " + std::to_string(r.schedule.seed) + "\n";
  out += "index: " + std::to_string(r.schedule.index) + "\n";
  out += "schedule: " + r.schedule.Describe() + "\n";
  out += std::string("query: ") + (r.query_ok ? "ok" : "fault") + "\n";
  out += std::string("update: ") +
         (r.update_ran ? (r.update_committed ? "committed" : "aborted")
                       : "none") +
         "\n";
  out += "elapsed_us: " + std::to_string(r.elapsed_us) + "\n";
  out += "--- violations ---\n";
  for (const std::string& v : r.violations) out += v + "\n";
  return out;
}

// ---------------------------------------------------------------------------
// Elastic membership chaos (DESIGN.md §16)
// ---------------------------------------------------------------------------

namespace {

constexpr int kElasticShards = 4;  ///< base fleet size
constexpr int kElasticSpares = 2;  ///< joinable spare slots

std::string PointQuery(int key) {
  return "import module namespace b=\"functions_b\" at \"b.xq\";\n"
         "execute at {\"shard:auctions.xml\"} {b:Q_B3(\"person" +
         std::to_string(key) + "\")}";
}

constexpr char kPersonsProbe[] =
    "count(doc(\"shard:persons.xml\")//person)";

const char* ElasticKindName(ElasticEvent::Kind kind) {
  switch (kind) {
    case ElasticEvent::kKill: return "kill";
    case ElasticEvent::kRevive: return "revive";
    case ElasticEvent::kJoin: return "join";
    case ElasticEvent::kRebalance: return "rebalance";
    case ElasticEvent::kBump: return "bump";
  }
  return "?";
}

}  // namespace

/// The chaos-free reference deployment: the same 4-shard layout with no
/// replication and no membership events, so every scatter-gather /
/// point-read result under chaos must equal what this network answers
/// (the scatter-gather merge is shard-ordered — a different shard count
/// would order the broadcast differently). Kept alive across runs to
/// cache point baselines.
class ElasticBaseline {
 public:
  ElasticBaseline() {
    xmark::ShardLoadOptions opts;
    opts.num_shards = kElasticShards;
    auto loaded = xmark::LoadShardedXmark(&net_, ChaosXmarkConfig(), opts);
    if (!loaded.ok()) {
      status_ = loaded.status();
      return;
    }
    peers_ = loaded->peers;
    core::Peer* p0 = net_.AddPeer("p0", core::EngineKind::kRelational);
    status_ =
        p0->RegisterModule(xmark::FunctionsBModuleSource(p0->uri()), "b.xq");
    for (core::Peer* p : peers_) {
      if (status_.ok()) status_ = p->RegisterModule(kUpdateModule, "u.xq");
    }
    if (status_.ok()) status_ = p0->RegisterModule(kUpdateModule, "u.xq");
  }

  const Status& status() const { return status_; }

  std::string Run(const std::string& query) {
    auto report = net_.Execute("p0", query);
    return report.ok() ? xdm::SequenceToString(report->result)
                       : std::string();
  }

  std::string PointRead(int key) {
    auto it = point_cache_.find(key);
    if (it != point_cache_.end()) return it->second;
    std::string result = Run(PointQuery(key));
    point_cache_[key] = result;
    return result;
  }

  /// Serialized bytes of every auctions fragment, in shard order.
  std::vector<std::string> FragmentSnapshot() {
    std::vector<std::string> frags;
    for (int k = 0; k < kElasticShards; ++k) {
      frags.push_back(FragmentBytes(peers_[static_cast<size_t>(k)],
                                    AuctionsFragName(k)));
    }
    return frags;
  }

  /// Runs the serial reference update; true iff its 2PC committed. The
  /// stamp is invisible to every read query (point reads included), so
  /// the point cache stays valid across it.
  bool RunUpdate() {
    auto report = net_.Execute("p0", kUpdateQuery);
    return report.ok() && report->committed;
  }

 private:
  core::PeerNetwork net_;
  std::vector<core::Peer*> peers_;
  Status status_ = Status::OK();
  std::map<int, std::string> point_cache_;
};

namespace {

/// The live elastic deployment: 4 base shard peers (slots 0..3), 2 spare
/// slots (4..5) that exist only after a join, and the p0 frontend.
/// Fragment texts are regenerated (deterministic) so rebalance can
/// materialize a shard at its new home.
struct ElasticFixture {
  core::PeerNetwork net;
  std::vector<core::Peer*> peers;  ///< slot -> peer; null = not joined yet
  std::vector<bool> connected;     ///< slot partition state
  std::vector<std::string> auction_frags;
  std::vector<std::string> person_frags;
  core::Peer* p0 = nullptr;
  Status status = Status::OK();
  int catalog_mutations = 0;  ///< joins + rebalances + bumps applied

  explicit ElasticFixture(int replication_factor) {
    xmark::ShardLoadOptions opts;
    opts.num_shards = kElasticShards;
    opts.replication_factor = replication_factor;
    auto loaded = xmark::LoadShardedXmark(&net, ChaosXmarkConfig(), opts);
    if (!loaded.ok()) {
      status = loaded.status();
      return;
    }
    peers = loaded->peers;
    peers.resize(kElasticShards + kElasticSpares, nullptr);
    connected.assign(peers.size(), true);
    auction_frags =
        xmark::GenerateAuctionsFragments(ChaosXmarkConfig(), kElasticShards);
    person_frags =
        xmark::GeneratePersonsFragments(ChaosXmarkConfig(), kElasticShards);
    p0 = net.AddPeer("p0", core::EngineKind::kRelational);
    status = p0->RegisterModule(xmark::FunctionsBModuleSource(p0->uri()),
                                "b.xq");
    for (core::Peer* p : loaded->peers) {
      if (status.ok()) status = p->RegisterModule(kUpdateModule, "u.xq");
    }
    if (status.ok()) status = p0->RegisterModule(kUpdateModule, "u.xq");
  }

  int SlotOf(const std::string& uri) const {
    for (size_t s = 0; s < peers.size(); ++s) {
      if (peers[s] != nullptr && peers[s]->uri() == uri) {
        return static_cast<int>(s);
      }
    }
    return -1;
  }

  /// Moves `shard`'s primary to the peer at `slot`: materializes both
  /// fragments there, rotates the old primary into the replica set, and
  /// re-registers BOTH collections back-to-back — the double version
  /// bump lands atomically between posts (the hook runs synchronously),
  /// so an in-flight query fences once and refetches the final map.
  void Rebalance(int shard, int slot) {
    core::Peer* target = peers[static_cast<size_t>(slot)];
    if (target == nullptr) return;
    for (const char* name : {"auctions.xml", "persons.xml"}) {
      const std::vector<std::string>& frags =
          name[0] == 'a' ? auction_frags : person_frags;
      (void)target->AddDocument(
          std::string(name) + "." + std::to_string(shard),
          frags[static_cast<size_t>(shard)]);
      core::ShardedCollection c;
      int64_t version = 0;
      if (!net.catalog().Snapshot(name, &c, &version)) continue;
      core::ShardInfo& sh = c.shards[static_cast<size_t>(shard)];
      if (sh.peer_uri != target->uri()) {
        std::string old_primary = sh.peer_uri;
        sh.peer_uri = target->uri();
        auto& reps = sh.replicas;
        reps.erase(std::remove(reps.begin(), reps.end(), target->uri()),
                   reps.end());
        if (std::find(reps.begin(), reps.end(), old_primary) == reps.end()) {
          reps.push_back(old_primary);
        }
      }
      (void)net.catalog().RegisterCollection(std::move(c));
    }
    ++catalog_mutations;
  }

  /// Applies one event; returns whether it had any effect (events aimed
  /// at absent/mismatched slots are defined no-ops).
  bool Apply(const ElasticEvent& e) {
    const size_t slot = static_cast<size_t>(e.peer);
    switch (e.kind) {
      case ElasticEvent::kKill:
        if (slot >= peers.size() || peers[slot] == nullptr ||
            !connected[slot]) {
          return false;
        }
        peers[slot]->Disconnect();
        connected[slot] = false;
        return true;
      case ElasticEvent::kRevive: {
        if (slot < peers.size() && peers[slot] != nullptr &&
            !connected[slot]) {
          peers[slot]->Reconnect();
          connected[slot] = true;
          return true;
        }
        // Heal the first open partition instead — revives stay useful
        // whatever the kill targets were.
        for (size_t s = 0; s < peers.size(); ++s) {
          if (peers[s] != nullptr && !connected[s]) {
            peers[s]->Reconnect();
            connected[s] = true;
            return true;
          }
        }
        return false;
      }
      case ElasticEvent::kJoin: {
        if (slot < static_cast<size_t>(kElasticShards) ||
            slot >= peers.size()) {
          return false;
        }
        if (peers[slot] == nullptr) {
          core::Peer* spare = net.AddPeer(
              "spare" +
                  std::to_string(slot - static_cast<size_t>(kElasticShards)),
              core::EngineKind::kInterpreter);
          (void)spare->RegisterModule(
              xmark::FunctionsBModuleSource(spare->uri()));
          (void)spare->RegisterModule(kUpdateModule, "u.xq");
          peers[slot] = spare;
          connected[slot] = true;
        }
        Rebalance(e.shard, static_cast<int>(slot));
        return true;
      }
      case ElasticEvent::kRebalance:
        if (slot >= peers.size() || peers[slot] == nullptr ||
            !connected[slot]) {
          return false;
        }
        Rebalance(e.shard, static_cast<int>(slot));
        return true;
      case ElasticEvent::kBump: {
        core::ShardedCollection c;
        int64_t version = 0;
        if (net.catalog().Snapshot("persons.xml", &c, &version)) {
          (void)net.catalog().RegisterCollection(std::move(c));
          ++catalog_mutations;
          return true;
        }
        return false;
      }
    }
    return false;
  }
};

}  // namespace

std::string ElasticSchedule::Describe() const {
  std::string out = "rf=" + std::to_string(replication_factor) + " events=[";
  for (size_t i = 0; i < events.size(); ++i) {
    const ElasticEvent& e = events[i];
    if (i > 0) out += ", ";
    out += std::string(ElasticKindName(e.kind)) + "(p" +
           std::to_string(e.peer);
    if (e.kind == ElasticEvent::kJoin ||
        e.kind == ElasticEvent::kRebalance) {
      out += "<-shard" + std::to_string(e.shard);
    }
    out += ")@" + std::to_string(e.serial);
  }
  out += "]";
  return out;
}

ElasticChaosExplorer::ElasticChaosExplorer(const ElasticConfig& config)
    : config_(config), baseline_(std::make_unique<ElasticBaseline>()) {
  if (baseline_->status().ok()) {
    baseline_broadcast_ = baseline_->Run(kChaosQuery);
    baseline_persons_ = baseline_->Run(kPersonsProbe);
    frag_baseline_ = baseline_->FragmentSnapshot();
    // The chaos-free SERIAL update: what the fleet must converge to
    // whenever a mid-schedule 2PC commits.
    if (baseline_->RunUpdate()) {
      baseline_broadcast_updated_ = baseline_->Run(kChaosQuery);
      frag_updated_ = baseline_->FragmentSnapshot();
    }
  }
}

ElasticChaosExplorer::~ElasticChaosExplorer() = default;

ElasticSchedule ElasticChaosExplorer::MakeSchedule(int index) const {
  ElasticSchedule s;
  s.seed = config_.seed;
  s.index = index;
  // Distinct stream constant from ChaosExplorer's sampler so the two
  // explorers never correlate under a shared seed.
  DeterministicPrng prng(MixSeed(config_.seed ^ 0xe1a57100ull, index));
  auto below = [&prng](uint64_t n) {
    return static_cast<int>(prng.NextUint64() % n);
  };
  s.replication_factor = 1 + below(2);
  const int num_events = 2 + below(4);  // 2..5 events
  int serial = 0;
  int next_spare = 0;
  for (int e = 0; e < num_events; ++e) {
    serial += 1 + below(4);  // spaced over the first queries' posts
    ElasticEvent ev;
    ev.serial = serial;
    const int roll = below(100);
    if (roll < 25) {
      ev.kind = ElasticEvent::kKill;
      ev.peer = below(kElasticShards + kElasticSpares);
    } else if (roll < 45) {
      ev.kind = ElasticEvent::kRevive;
      ev.peer = below(kElasticShards + kElasticSpares);
    } else if (roll < 65 && next_spare < kElasticSpares) {
      ev.kind = ElasticEvent::kJoin;
      ev.peer = kElasticShards + next_spare++;
      ev.shard = below(kElasticShards);
    } else if (roll < 85) {
      ev.kind = ElasticEvent::kRebalance;
      ev.peer = below(kElasticShards + kElasticSpares);
      ev.shard = below(kElasticShards);
    } else {
      ev.kind = ElasticEvent::kBump;
    }
    s.events.push_back(ev);
  }
  return s;
}

ElasticResult ElasticChaosExplorer::RunSchedule(
    const ElasticSchedule& schedule) {
  ElasticResult r;
  r.schedule = schedule;
  ++stats_.explored;

  auto fail = [&r](const std::string& invariant, const std::string& detail) {
    r.ok = false;
    r.violations.push_back(invariant + ": " + detail);
  };

  ElasticFixture fx(schedule.replication_factor);
  if (!fx.status.ok() || !baseline_->status().ok()) {
    fail("fixture", (!fx.status.ok() ? fx.status : baseline_->status())
                        .ToString());
    ++stats_.violations;
    return r;
  }
  if (config_.with_updates &&
      frag_updated_.size() != static_cast<size_t>(kElasticShards)) {
    fail("fixture", "no chaos-free updated baseline available");
    ++stats_.violations;
    return r;
  }

  size_t next_event = 0;
  std::vector<ElasticEvent> events = schedule.events;  // sorted by serial
  std::sort(events.begin(), events.end(),
            [](const ElasticEvent& a, const ElasticEvent& b) {
              return a.serial < b.serial;
            });
  fx.net.network().set_post_hook([&](int64_t serial) {
    while (next_event < events.size() &&
           events[next_event].serial <= serial) {
      if (fx.Apply(events[next_event])) ++r.events_fired;
      ++next_event;
    }
  });

  // Conservative must-survive test at query start: every shard of the
  // auctions snapshot keeps a serving peer (primary or replica) that is
  // live now, never a kill target anywhere in the schedule, AND current —
  // a rebalanced-in copy whose applied data version lags the catalog's
  // authoritative one correctly refuses reads (StaleReplica) until
  // repaired, so it cannot carry the survival guarantee.
  auto must_survive = [&]() {
    std::set<std::string> doomed;
    for (const ElasticEvent& e : schedule.events) {
      if (e.kind != ElasticEvent::kKill) continue;
      const size_t slot = static_cast<size_t>(e.peer);
      if (slot < fx.peers.size() && fx.peers[slot] != nullptr) {
        doomed.insert(fx.peers[slot]->uri());
      }
    }
    core::ShardedCollection c;
    int64_t version = 0;
    if (!fx.net.catalog().Snapshot("auctions.xml", &c, &version)) {
      return false;
    }
    for (const core::ShardInfo& sh : c.shards) {
      std::vector<std::string> serving{sh.peer_uri};
      serving.insert(serving.end(), sh.replicas.begin(), sh.replicas.end());
      const uint64_t authoritative =
          fx.net.catalog().FragmentDataVersion("auctions.xml", sh.index);
      bool alive = false;
      for (const std::string& uri : serving) {
        const int slot = fx.SlotOf(uri);
        if (slot >= 0 && fx.connected[static_cast<size_t>(slot)] &&
            doomed.count(uri) == 0 &&
            fx.peers[static_cast<size_t>(slot)]->database().AppliedDataVersion(
                AuctionsFragName(sh.index)) >= authoritative) {
          alive = true;
          break;
        }
      }
      if (!alive) return false;
    }
    return true;
  };

  // The workload: broadcasts interleaved with routed point reads, point
  // keys drawn from a per-(seed,index) stream.
  DeterministicPrng qprng(
      MixSeed(schedule.seed ^ 0x517cc1b7ull, schedule.index));
  const int num_persons = ChaosXmarkConfig().num_persons;
  const int64_t run_start_us = fx.net.network().clock().NowMicros();
  const bool schedule_has_kills =
      std::any_of(schedule.events.begin(), schedule.events.end(),
                  [](const ElasticEvent& e) {
                    return e.kind == ElasticEvent::kKill;
                  });
  constexpr int kQueries = 5;
  for (int qi = 0; qi < kQueries; ++qi) {
    // With updates on, the middle (broadcast) slot becomes the updating
    // broadcast; reads after it must match the updated baseline iff its
    // 2PC committed — all-or-nothing leaves no third state.
    const bool is_update = config_.with_updates && qi == 2;
    const bool is_point = (qi % 2) == 1;
    const int key =
        is_point ? static_cast<int>(qprng.NextUint64() %
                                    static_cast<uint64_t>(num_persons))
                 : 0;
    const std::string query =
        is_update ? kUpdateQuery : (is_point ? PointQuery(key) : kChaosQuery);
    const std::string expected =
        is_point ? baseline_->PointRead(key)
                 : (r.update_committed ? baseline_broadcast_updated_
                                       : baseline_broadcast_);

    const bool covered = must_survive();
    const int mutations_before = fx.catalog_mutations;
    const int64_t reroutes_before =
        fx.net.metrics().stale_catalog_reroutes();
    const int64_t q_start = fx.net.network().clock().NowMicros();
    core::ExecuteOptions exec_options;
    exec_options.deadline_us = kDeadlineBudgetUs;
    auto report = fx.net.Execute("p0", query, exec_options);
    const int64_t q_elapsed =
        fx.net.network().clock().NowMicros() - q_start;
    const int mutations_during = fx.catalog_mutations - mutations_before;
    const int64_t reroutes =
        fx.net.metrics().stale_catalog_reroutes() - reroutes_before;

    if (is_update) {
      r.update_ran = true;
      if (report.ok() && report->committed) {
        ++r.queries_ok;
        r.update_committed = true;
        ++stats_.updates_committed;
      } else {
        ++r.queries_failed;
        ++stats_.updates_aborted;
        const std::string text =
            report.ok() ? ("aborted: " + report->abort_reason)
                        : report.status().ToString();
        // 8. Update-survival: with no kill event anywhere in the schedule
        //    and no catalog mutation racing the write, every copy was
        //    reachable throughout — the all-copies 2PC must commit.
        if (!schedule_has_kills && mutations_during == 0) {
          fail("update-survival",
               "update failed with no kills scheduled and no racing "
               "catalog mutation: " + text);
        }
        // 3. Clean-fault applies to hard failures of the write too (a
        //    clean coordinator abort is not a fault).
        if (!report.ok()) {
          const StatusCode code = report.status().code();
          if (code != StatusCode::kNetworkError &&
              code != StatusCode::kDeadlineExceeded &&
              code != StatusCode::kStaleCatalog) {
            fail("clean-fault",
                 "update: unexpected fault class: " + text);
          } else if (r.ok) {
            ++stats_.clean_faults;
          }
        }
      }
    } else if (report.ok()) {
      ++r.queries_ok;
      // 1. Byte-identity against the chaos-free baseline, whatever mix of
      //    primaries, replicas, and freshly joined peers answered.
      const std::string got = xdm::SequenceToString(report->result);
      if (got != expected) {
        fail("byte-identity",
             std::string(is_point ? "point" : "broadcast") + " query " +
                 std::to_string(qi) + " diverges from the chaos-free "
                 "baseline (got " + std::to_string(got.size()) +
                 " bytes, want " + std::to_string(expected.size()) + ")");
      }
    } else {
      ++r.queries_failed;
      const StatusCode code = report.status().code();
      const std::string text = report.status().ToString();
      // 2. Replica-coverage: a fully covered query with at most one racing
      //    catalog mutation has no excuse to fail (must_survive already
      //    discounts lagging copies, so a StaleReplica-only shard never
      //    counts as covered).
      if (covered && mutations_during <= 1) {
        fail("replica-coverage",
             "query " + std::to_string(qi) +
                 " failed although live never-killed replicas cover every "
                 "shard: " + text);
      }
      // 3. Clean-fault: elastic churn may legitimately surface a second
      //    fence (kStaleCatalog) — and once a write ran, a lagging copy
      //    refusing to serve (kStaleReplica) — but nothing internal or
      //    half-merged.
      if (code != StatusCode::kNetworkError &&
          code != StatusCode::kDeadlineExceeded &&
          code != StatusCode::kStaleCatalog &&
          !(r.update_ran && code == StatusCode::kStaleReplica)) {
        fail("clean-fault", "query " + std::to_string(qi) +
                                ": unexpected fault class: " + text);
      } else if (r.ok) {
        ++stats_.clean_faults;
      }
    }
    // 4. No-hang, per query.
    if (q_elapsed > kDeadlineBudgetUs + kDeadlineSlackUs) {
      fail("no-hang", "query " + std::to_string(qi) + " consumed " +
                          std::to_string(q_elapsed) + "us of a " +
                          std::to_string(kDeadlineBudgetUs) + "us budget");
    }
    // 5. Single-reroute, conditional on at most one racing mutation (two
    //    mutations legitimately fence a query twice — the second fence
    //    fails cleanly instead of re-routing again).
    if (mutations_during <= 1 && reroutes > 1) {
      fail("single-reroute",
           "query " + std::to_string(qi) + " re-routed " +
               std::to_string(reroutes) + " times under " +
               std::to_string(mutations_during) + " catalog mutation(s)");
    }
  }

  // 6. No-lost-shard, after quiesce: stop firing events, heal every
  //    partition, and require (a) every shard of every collection keeps a
  //    live serving peer and (b) scatter-gather probes over BOTH
  //    collections are byte-identical to the chaos-free baseline.
  fx.net.network().set_post_hook(nullptr);
  std::set<std::string> sabotaged;
  if (config_.sabotage_lost_shard) {
    // Self-test: permanently partition every server of auctions shard 0 —
    // the detector below must fire, or it is vacuous.
    core::ShardedCollection c;
    int64_t version = 0;
    if (fx.net.catalog().Snapshot("auctions.xml", &c, &version)) {
      sabotaged.insert(c.shards[0].peer_uri);
      for (const std::string& uri : c.shards[0].replicas) {
        sabotaged.insert(uri);
      }
    }
    for (size_t s = 0; s < fx.peers.size(); ++s) {
      if (fx.peers[s] != nullptr && sabotaged.count(fx.peers[s]->uri())) {
        if (fx.connected[s]) fx.peers[s]->Disconnect();
        fx.connected[s] = false;
      }
    }
  }
  for (size_t s = 0; s < fx.peers.size(); ++s) {
    if (fx.peers[s] != nullptr && !fx.connected[s] &&
        sabotaged.count(fx.peers[s]->uri()) == 0) {
      fx.peers[s]->Reconnect();
      fx.connected[s] = true;
    }
  }
  // Drain distributed write state before probing: the coordinator retries
  // in-doubt decisions, then every live peer resolves its prepared
  // sessions by inquiry and catches lagging fragments up by anti-entropy
  // repair (DESIGN.md §17) — rebalanced-in copies start at data version 0
  // and sync here.
  (void)fx.p0->service().RetryInDoubt(&fx.net.network());
  for (size_t s = 0; s < fx.peers.size(); ++s) {
    if (fx.peers[s] != nullptr && fx.connected[s]) {
      (void)fx.peers[s]->Repair();
    }
  }
  for (const char* name : {"auctions.xml", "persons.xml"}) {
    core::ShardedCollection c;
    int64_t version = 0;
    if (!fx.net.catalog().Snapshot(name, &c, &version)) {
      fail("no-lost-shard", std::string(name) + " vanished from the catalog");
      continue;
    }
    for (const core::ShardInfo& sh : c.shards) {
      std::vector<std::string> serving{sh.peer_uri};
      serving.insert(serving.end(), sh.replicas.begin(), sh.replicas.end());
      bool alive = false;
      for (const std::string& uri : serving) {
        const int slot = fx.SlotOf(uri);
        if (slot >= 0 && fx.connected[static_cast<size_t>(slot)]) {
          alive = true;
          break;
        }
      }
      if (!alive) {
        fail("no-lost-shard", std::string(name) + " shard " +
                                  std::to_string(sh.index) +
                                  " has no live serving peer after quiesce");
      }
    }
  }
  struct Probe {
    const char* what;
    const char* query;
    const std::string* want;
  };
  const std::string& want_broadcast =
      r.update_committed ? baseline_broadcast_updated_ : baseline_broadcast_;
  const Probe probes[] = {
      {"auctions broadcast", kChaosQuery, &want_broadcast},
      {"persons scatter-gather", kPersonsProbe, &baseline_persons_},
  };
  for (const Probe& probe : probes) {
    core::ExecuteOptions exec_options;
    exec_options.deadline_us = kDeadlineBudgetUs;
    auto report = fx.net.Execute("p0", probe.query, exec_options);
    if (!report.ok()) {
      fail("no-lost-shard", std::string(probe.what) +
                                " probe failed after quiesce: " +
                                report.status().ToString());
    } else if (xdm::SequenceToString(report->result) != *probe.want) {
      fail("no-lost-shard", std::string(probe.what) +
                                " probe diverges from the chaos-free "
                                "baseline after quiesce");
    }
  }
  // 7. Replica-convergence (with_updates): every catalog-listed copy of
  //    every auctions fragment — rebalanced-in copies included — is now
  //    byte-identical to the chaos-free serial state. Not merely "all
  //    copies agree": agreeing on a wrong state must fire too.
  if (config_.with_updates) {
    const std::vector<std::string>& want_frags =
        r.update_committed ? frag_updated_ : frag_baseline_;
    core::ShardedCollection c;
    int64_t version = 0;
    if (fx.net.catalog().Snapshot("auctions.xml", &c, &version) &&
        want_frags.size() == static_cast<size_t>(kElasticShards)) {
      for (const core::ShardInfo& sh : c.shards) {
        std::vector<std::string> serving{sh.peer_uri};
        serving.insert(serving.end(), sh.replicas.begin(),
                       sh.replicas.end());
        for (const std::string& uri : serving) {
          const int slot = fx.SlotOf(uri);
          if (slot < 0 || !fx.connected[static_cast<size_t>(slot)]) continue;
          const std::string got =
              FragmentBytes(fx.peers[static_cast<size_t>(slot)],
                            AuctionsFragName(sh.index));
          if (got != want_frags[static_cast<size_t>(sh.index)]) {
            fail("replica-convergence",
                 "copy of shard " + std::to_string(sh.index) + " at " +
                     uri +
                     " diverges from the chaos-free serial state after "
                     "quiesce+repair (" + std::to_string(got.size()) +
                     " bytes, want " +
                     std::to_string(
                         want_frags[static_cast<size_t>(sh.index)].size()) +
                     ")");
          }
        }
      }
    }
  }

  r.elapsed_us = fx.net.network().clock().NowMicros() - run_start_us;
  r.failover_successes = fx.net.metrics().failover_successes();
  r.stale_reroutes = fx.net.metrics().stale_catalog_reroutes();
  stats_.queries_ok += r.queries_ok;
  stats_.events_fired += r.events_fired;
  stats_.failover_successes += r.failover_successes;
  stats_.stale_reroutes += r.stale_reroutes;
  if (!r.ok) ++stats_.violations;
  return r;
}

std::string FormatElasticRepro(const ElasticResult& r) {
  std::string out;
  out += "# xrpc-fuzz elastic repro\n";
  out += "seed: " + std::to_string(r.schedule.seed) + "\n";
  out += "index: " + std::to_string(r.schedule.index) + "\n";
  out += "schedule: " + r.schedule.Describe() + "\n";
  out += "queries_ok: " + std::to_string(r.queries_ok) + "\n";
  out += "queries_failed: " + std::to_string(r.queries_failed) + "\n";
  out += std::string("update: ") +
         (r.update_ran ? (r.update_committed ? "committed" : "aborted")
                       : "none") +
         "\n";
  out += "elapsed_us: " + std::to_string(r.elapsed_us) + "\n";
  out += "--- violations ---\n";
  for (const std::string& v : r.violations) out += v + "\n";
  return out;
}

StatusOr<ElasticSchedule> ParseElasticRepro(const std::string& content) {
  ElasticSchedule s;
  bool saw_seed = false, saw_index = false;
  size_t pos = 0;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("seed: ", 0) == 0) {
      s.seed = std::strtoull(line.c_str() + 6, nullptr, 10);
      saw_seed = true;
    } else if (line.rfind("index: ", 0) == 0) {
      s.index = std::atoi(line.c_str() + 7);
      saw_index = true;
    }
  }
  if (!saw_seed || !saw_index) {
    return Status::InvalidArgument("elastic repro needs seed: and index:");
  }
  // The event dimensions are re-derived: MakeSchedule(index) under the
  // same seed reproduces them exactly.
  return s;
}

StatusOr<ChaosSchedule> ParseChaosRepro(const std::string& content) {
  ChaosSchedule s;
  bool saw_seed = false, saw_index = false;
  size_t pos = 0;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("seed: ", 0) == 0) {
      s.seed = std::strtoull(line.c_str() + 6, nullptr, 10);
      saw_seed = true;
    } else if (line.rfind("index: ", 0) == 0) {
      s.index = std::atoi(line.c_str() + 7);
      saw_index = true;
    }
  }
  if (!saw_seed || !saw_index) {
    return Status::InvalidArgument("chaos repro needs seed: and index:");
  }
  // The membership dimensions are re-derived: MakeSchedule(index) under
  // the same seed reproduces them exactly.
  return s;
}

}  // namespace xrpc::fuzz
