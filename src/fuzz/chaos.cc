#include "fuzz/chaos.h"

#include <cstdlib>
#include <memory>
#include <utility>

#include "base/prng.h"
#include "core/peer_network.h"
#include "net/circuit_breaker.h"
#include "xdm/item.h"
#include "xmark/shard_loader.h"
#include "xmark/xmark.h"

namespace xrpc::fuzz {

namespace {

constexpr int kNumShards = 3;

/// The fixed workload: a broadcast over every shard, so the survival of
/// the query depends on every shard having a reachable copy.
constexpr char kChaosQuery[] =
    "import module namespace b=\"functions_b\" at \"b.xq\";\n"
    "execute at {\"shard:auctions.xml\"} {b:Q_B1()}";

/// Virtual-time budget of every run; chaos must resolve — success or one
/// clean fault — within it. Generous: a healthy broadcast costs ~1 ms.
constexpr int64_t kDeadlineBudgetUs = 5'000'000;
/// The final message of a run may complete past the budget before the
/// expiry is observed; allow one round of wire slack beyond it.
constexpr int64_t kDeadlineSlackUs = 1'000'000;

xmark::XmarkConfig ChaosXmarkConfig() {
  xmark::XmarkConfig cfg;
  cfg.num_persons = 18;
  cfg.num_closed_auctions = 24;
  cfg.num_matches = 4;
  cfg.annotation_bytes = 8;
  return cfg;
}

/// SplitMix-style mix (same construction as the schedule explorer) so
/// every (seed, index) pair gets an independent sampled-dimension stream.
uint64_t MixSeed(uint64_t seed, int index) {
  uint64_t x =
      seed + 0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(index) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  return x;
}

struct Fixture {
  core::PeerNetwork net;
  std::vector<core::Peer*> shard_peers;
  core::Peer* p0 = nullptr;
  Status status = Status::OK();

  Fixture(int replication_factor, bool sabotage) {
    xmark::ShardLoadOptions opts;
    opts.num_shards = kNumShards;
    opts.replication_factor = replication_factor;
    auto loaded = xmark::LoadShardedXmark(&net, ChaosXmarkConfig(), opts);
    if (!loaded.ok()) {
      status = loaded.status();
      return;
    }
    shard_peers = loaded->peers;
    p0 = net.AddPeer("p0", core::EngineKind::kRelational);
    status = p0->RegisterModule(xmark::FunctionsBModuleSource(p0->uri()),
                                "b.xq");
    if (sabotage) {
      // Replace shard 0's primary fragment with an empty one: any run
      // that answers from it diverges from the baseline, so the
      // byte-identity detector must fire.
      (void)shard_peers[0]->AddDocument(
          "auctions.xml.0", "<site><closed_auctions/></site>");
    }
  }
};

}  // namespace

bool ChaosSchedule::Covered(int num_shards) const {
  for (int k = 0; k < num_shards; ++k) {
    bool alive = false;
    for (int r = 0; r < replication_factor && !alive; ++r) {
      alive = (kill_mask & (1u << ((k + r) % num_shards))) == 0;
    }
    if (!alive) return false;
  }
  return true;
}

std::string ChaosSchedule::Describe() const {
  std::string out = "rf=" + std::to_string(replication_factor);
  if (kill_mask != 0) {
    out += " kill={";
    for (int k = 0; k < kNumShards; ++k) {
      if (kill_mask & (1u << k)) out += std::to_string(k);
    }
    out += "}@" + std::to_string(kill_serial);
    if (revive_serial > 0) out += " revive@" + std::to_string(revive_serial);
  }
  if (bump_serial > 0) out += " bump@" + std::to_string(bump_serial);
  if (use_breaker) out += " breaker=on";
  out += Covered(kNumShards) ? " [covered]" : " [uncovered]";
  return out;
}

ChaosExplorer::ChaosExplorer(const ChaosConfig& config) : config_(config) {
  // Chaos-free reference run: its normalized result is the byte-identity
  // baseline every surviving run must reproduce, regardless of which
  // replicas answered. Deliberately built WITHOUT sabotage.
  Fixture fx(/*replication_factor=*/1, /*sabotage=*/false);
  if (fx.status.ok()) {
    auto report = fx.net.Execute("p0", kChaosQuery);
    if (report.ok()) baseline_ = xdm::SequenceToString(report->result);
  }
}

ChaosExplorer::~ChaosExplorer() = default;

// Grid dimensions: rf {1,2} x kill {none,0,1,01} x kill instant {pre,2,4}
// x revive {never, kill+3} x bump {off,3} x breaker {off,on}.
constexpr int kKillMasks[] = {0, 1, 2, 3};
constexpr int kKillSerials[] = {0, 2, 4};

int ChaosExplorer::GridSize() const { return 2 * 4 * 3 * 2 * 2 * 2; }

ChaosSchedule ChaosExplorer::MakeSchedule(int index) const {
  ChaosSchedule s;
  s.seed = config_.seed;
  s.index = index;

  if (index < GridSize()) {
    int k = index;
    s.replication_factor = 1 + k % 2;
    k /= 2;
    s.kill_mask = static_cast<uint32_t>(kKillMasks[k % 4]);
    k /= 4;
    s.kill_serial = kKillSerials[k % 3];
    k /= 3;
    if ((k % 2) == 1 && s.kill_mask != 0) {
      s.revive_serial = s.kill_serial + 3;
    }
    k /= 2;
    if ((k % 2) == 1) s.bump_serial = 3;
    k /= 2;
    s.use_breaker = (k % 2) == 1;
    if (s.kill_mask == 0) s.kill_serial = 0;  // canonicalize no-kill points
    return s;
  }

  // Sampled region: wider ranges, including kill-everything masks and
  // replication factor 3 (every peer holds every fragment).
  DeterministicPrng prng(MixSeed(config_.seed, index));
  auto below = [&prng](uint64_t n) {
    return static_cast<int>(prng.NextUint64() % n);
  };
  s.replication_factor = 1 + below(3);
  s.kill_mask = static_cast<uint32_t>(below(8));
  if (s.kill_mask != 0) {
    s.kill_serial = below(7);
    if (below(2) == 0) s.revive_serial = s.kill_serial + 1 + below(4);
  }
  if (below(2) == 0) s.bump_serial = 1 + below(5);
  s.use_breaker = below(2) == 0;
  return s;
}

ChaosResult ChaosExplorer::RunSchedule(const ChaosSchedule& schedule) {
  ChaosResult r;
  r.schedule = schedule;
  r.covered = schedule.Covered(kNumShards);
  ++stats_.explored;

  auto fail = [&r](const std::string& invariant, const std::string& detail) {
    r.ok = false;
    r.violations.push_back(invariant + ": " + detail);
  };

  Fixture fx(schedule.replication_factor, config_.sabotage_divergence);
  if (!fx.status.ok()) {
    fail("fixture", fx.status.ToString());
    ++stats_.violations;
    return r;
  }
  if (schedule.use_breaker) {
    net::CircuitBreaker::Policy policy;
    policy.failure_threshold = 2;
    policy.cooldown_us = 200'000;
    fx.net.EnableCircuitBreaker(policy);
  }

  auto apply_kill = [&] {
    for (int k = 0; k < kNumShards; ++k) {
      if (schedule.kill_mask & (1u << k)) fx.shard_peers[k]->Disconnect();
    }
  };
  if (schedule.kill_mask != 0 && schedule.kill_serial == 0) apply_kill();
  fx.net.network().set_post_hook([&](int64_t serial) {
    if (schedule.kill_mask != 0 && schedule.kill_serial > 0 &&
        serial == schedule.kill_serial) {
      apply_kill();
    }
    if (schedule.kill_mask != 0 && schedule.revive_serial > 0 &&
        serial == schedule.revive_serial) {
      for (int k = 0; k < kNumShards; ++k) {
        if (schedule.kill_mask & (1u << k)) fx.shard_peers[k]->Reconnect();
      }
    }
    if (schedule.bump_serial > 0 && serial == schedule.bump_serial) {
      // Identical re-registration: only the version moves, so a fenced
      // query re-routes once and then MUST succeed on the same shard map.
      core::ShardedCollection c;
      int64_t version = 0;
      if (fx.net.catalog().Snapshot("persons.xml", &c, &version)) {
        (void)fx.net.catalog().RegisterCollection(std::move(c));
      }
    }
  });

  const int64_t start_us = fx.net.network().clock().NowMicros();
  core::ExecuteOptions exec_options;
  exec_options.deadline_us = kDeadlineBudgetUs;
  auto report = fx.net.Execute("p0", kChaosQuery, exec_options);
  r.elapsed_us = fx.net.network().clock().NowMicros() - start_us;
  r.failover_successes = fx.net.metrics().failover_successes();
  r.stale_reroutes = fx.net.metrics().stale_catalog_reroutes();
  stats_.failover_successes += r.failover_successes;
  stats_.stale_reroutes += r.stale_reroutes;

  if (report.ok()) {
    r.query_ok = true;
    r.outcome = xdm::SequenceToString(report->result);
    ++stats_.survived;
    // 1. Byte-identity: whichever replicas answered, the merged result is
    //    indistinguishable from the chaos-free run.
    if (r.outcome != baseline_) {
      fail("byte-identity",
           "result diverges from the chaos-free baseline (got " +
               std::to_string(r.outcome.size()) + " bytes, want " +
               std::to_string(baseline_.size()) + ")");
    }
  } else {
    r.outcome = report.status().ToString();
    const StatusCode code = report.status().code();
    // 2. Replica-coverage: with a live copy of every shard the query has
    //    no excuse to fail — failover must have found it.
    if (r.covered) {
      fail("replica-coverage",
           "failed although live replicas cover every shard: " + r.outcome);
    }
    // 3. Clean-fault: an uncovered loss surfaces as one network/deadline
    //    fault, nothing half-merged or internal.
    if (code != StatusCode::kNetworkError &&
        code != StatusCode::kDeadlineExceeded) {
      fail("clean-fault", "unexpected fault class: " + r.outcome);
    } else if (r.ok) {
      ++stats_.clean_faults;
    }
  }
  // 4. No-hang: chaos or not, the query resolves within its budget.
  if (r.elapsed_us > kDeadlineBudgetUs + kDeadlineSlackUs) {
    fail("no-hang", "query consumed " + std::to_string(r.elapsed_us) +
                        "us of a " + std::to_string(kDeadlineBudgetUs) +
                        "us budget");
  }
  // 5. Single-reroute: one epoch fence means one refetch + re-dispatch.
  if (r.stale_reroutes > 1) {
    fail("single-reroute",
         std::to_string(r.stale_reroutes) + " catalog re-routes in one query");
  }

  if (!r.ok) ++stats_.violations;
  return r;
}

std::string FormatChaosRepro(const ChaosResult& r) {
  std::string out;
  out += "# xrpc-fuzz chaos repro\n";
  out += "seed: " + std::to_string(r.schedule.seed) + "\n";
  out += "index: " + std::to_string(r.schedule.index) + "\n";
  out += "schedule: " + r.schedule.Describe() + "\n";
  out += std::string("query: ") + (r.query_ok ? "ok" : "fault") + "\n";
  out += "elapsed_us: " + std::to_string(r.elapsed_us) + "\n";
  out += "--- violations ---\n";
  for (const std::string& v : r.violations) out += v + "\n";
  return out;
}

StatusOr<ChaosSchedule> ParseChaosRepro(const std::string& content) {
  ChaosSchedule s;
  bool saw_seed = false, saw_index = false;
  size_t pos = 0;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("seed: ", 0) == 0) {
      s.seed = std::strtoull(line.c_str() + 6, nullptr, 10);
      saw_seed = true;
    } else if (line.rfind("index: ", 0) == 0) {
      s.index = std::atoi(line.c_str() + 7);
      saw_index = true;
    }
  }
  if (!saw_seed || !saw_index) {
    return Status::InvalidArgument("chaos repro needs seed: and index:");
  }
  // The membership dimensions are re-derived: MakeSchedule(index) under
  // the same seed reproduces them exactly.
  return s;
}

}  // namespace xrpc::fuzz
