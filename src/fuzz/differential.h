#ifndef XRPC_FUZZ_DIFFERENTIAL_H_
#define XRPC_FUZZ_DIFFERENTIAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/peer_network.h"
#include "fuzz/generator.h"

namespace xrpc::fuzz {

/// Outcome of running one query through both engines.
struct Comparison {
  bool agree = false;
  bool skipped = false;      ///< hit a documented known-divergence pattern
  std::string skip_reason;

  bool relational_ok = false;
  bool interpreter_ok = false;
  bool fell_back = false;    ///< relational p0 fell back to the interpreter
  std::string relational_result;   ///< normalized result (or error text)
  std::string interpreter_result;  ///< normalized result (or error text)
  /// For updating queries: normalized post-state of every document on every
  /// peer, per engine.
  std::string relational_state;
  std::string interpreter_state;
};

/// Counters of a differential campaign.
struct DiffStats {
  int64_t executed = 0;
  int64_t agreed = 0;
  int64_t diverged = 0;
  int64_t skipped = 0;       ///< skiplisted known spec gaps
  int64_t both_error = 0;    ///< both engines rejected the query
  int64_t fell_back = 0;     ///< relational engine fell back (no signal)
  int64_t updating = 0;
};

/// A divergence found by the harness, after minimization.
struct Divergence {
  std::string query;           ///< minimized query text
  std::string original_query;  ///< as generated
  Comparison comparison;       ///< of the minimized query
  uint64_t seed = 0;
  int index = 0;
  bool updating = false;       ///< replay must capture document state
  bool force = false;          ///< produced under force_divergence self-test
};

struct DifferentialConfig {
  /// XMark scale of the fixture documents (kept small: the harness
  /// rebuilds document state after every updating query).
  int num_persons = 12;
  int num_closed_auctions = 18;
  int num_open_auctions = 5;
  int num_items = 8;
  int num_matches = 3;
  /// When > 0, both fixture networks additionally carry the XMark
  /// documents sharded over this many peers (xmark::LoadShardedXmark), so
  /// generated/corpus queries can target "shard:auctions.xml" and the
  /// scatter-gather merge is differentially checked against the
  /// interpreter's shard-order concatenation.
  int num_shards = 0;
  /// Morsel-executor worker count of the RELATIONAL network's peers
  /// (DESIGN.md §15); the interpreter reference always runs serially.
  /// > 1 turns every differential run into a determinism check of the
  /// parallel executor: output must stay byte-identical to the serial
  /// interpreter-agreeing baseline at any worker count.
  int exec_threads = 1;
  /// Self-test mode: treat every non-empty agreeing result as a
  /// divergence, to exercise minimization + repro writing end to end.
  bool force_divergence = false;
};

/// Runs one query through two identically provisioned peer networks — one
/// whose peers run the loop-lifted relational engine, one whose peers run
/// the tree-walking interpreter — and compares sequence-normalized results
/// (and, for updating queries, final document state).
///
/// Normalization rules (documented in DESIGN.md §11):
///  - items are rendered space-separated (xdm::SequenceToString) with
///    numeric atomics re-rendered through a canonical %.12g so that
///    integer/decimal/double lexical differences of equal values vanish;
///  - an evaluation error normalizes to "ERROR"; the two engines agree on
///    an erroring query iff both error (messages are NOT compared — the
///    engines legitimately phrase failures differently);
///  - document state is serialized per peer as "peer:name=<xml>" lines.
class DifferentialHarness {
 public:
  explicit DifferentialHarness(const DifferentialConfig& config = {});
  ~DifferentialHarness();

  /// Runs `query_text` on both engines. `updating` rebuilds the fixtures
  /// afterwards so the next query sees pristine documents.
  Comparison Run(const std::string& query_text, bool updating);

  /// Runs a generated query, and on divergence minimizes it: repeatedly
  /// collapses reducible subtrees while the divergence persists.
  /// Returns true if a divergence was recorded into `out`.
  bool RunAndMinimize(GeneratedQuery* query, Divergence* out);

  /// Classifies a query against the known-divergence skiplist. Returns a
  /// non-empty reason when the query exercises a documented spec gap that
  /// the two engines answer differently on purpose.
  static std::string SkiplistReason(const std::string& query_text);

  const DiffStats& stats() const { return stats_; }

 private:
  void BuildFixtures();
  /// Evaluates on one network; returns the normalized result string.
  std::string RunOn(core::PeerNetwork* net, const std::string& query,
                    bool* ok, bool* fell_back);
  std::string CaptureState(core::PeerNetwork* net);

  DifferentialConfig config_;
  DiffStats stats_;
  std::unique_ptr<core::PeerNetwork> relational_net_;
  std::unique_ptr<core::PeerNetwork> interpreter_net_;
};

/// Formats a self-contained repro file for a divergence; ReadReproFile
/// parses it back. The file replays deterministically: it carries the
/// query text itself, not the generator state.
std::string FormatReproFile(const Divergence& d);
StatusOr<Divergence> ParseReproFile(const std::string& content);

/// Canonical sequence normalization used by the harness and the corpus
/// test (exposed for reuse).
std::string NormalizeSequence(const xdm::Sequence& seq);

}  // namespace xrpc::fuzz

#endif  // XRPC_FUZZ_DIFFERENTIAL_H_
