#ifndef XRPC_FUZZ_CHAOS_H_
#define XRPC_FUZZ_CHAOS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/statusor.h"

namespace xrpc::fuzz {

/// One membership-chaos schedule (DESIGN.md §14): everything that varies
/// between runs of the fixed read-only broadcast workload over a
/// replicated sharded XMark deployment. A ChaosSchedule is a pure function
/// of (seed, index) — replaying the same pair reproduces the identical run
/// under the virtual clock.
struct ChaosSchedule {
  uint64_t seed = 0;
  int index = 0;

  /// Total copies of every fragment, primary included (ring placement).
  int replication_factor = 1;
  /// Bit k set: shard peer k is disconnected (dials refused) mid-run.
  uint32_t kill_mask = 0;
  /// Post serial at which the kills fire; 0 = before the query starts.
  int kill_serial = 0;
  /// Post serial at which every killed peer reconnects; 0 = never.
  int revive_serial = 0;
  /// Post serial at which the catalog version is bumped (an identical
  /// re-registration) while scatter calls are in flight; 0 = off. Stamped
  /// requests then hit the epoch fence and must re-route exactly once.
  int bump_serial = 0;
  /// Per-peer circuit breaker on the outgoing transport: dead-peer dials
  /// trip it open, so later subcalls skip straight to a replica.
  bool use_breaker = false;

  std::string Describe() const;

  /// True when every shard keeps at least one replica-set member that is
  /// never killed — the condition under which the query MUST survive
  /// byte-identically (failover can always find a live copy).
  bool Covered(int num_shards) const;
};

/// Outcome of one chaos run.
struct ChaosResult {
  ChaosSchedule schedule;
  bool ok = true;                       ///< all invariants held
  std::vector<std::string> violations;  ///< "invariant: detail" lines

  bool covered = false;   ///< schedule.Covered() at run time
  bool query_ok = false;  ///< the broadcast query returned a result
  std::string outcome;    ///< normalized result, or the fault text
  bool update_ran = false;        ///< an updating query ran under chaos
  bool update_committed = false;  ///< ... and its 2PC committed
  int64_t elapsed_us = 0; ///< virtual time the query consumed
  int64_t failover_successes = 0;
  int64_t stale_reroutes = 0;
};

struct ChaosStats {
  int64_t explored = 0;
  int64_t survived = 0;      ///< runs that returned a (checked) result
  int64_t clean_faults = 0;  ///< uncovered runs that failed cleanly
  int64_t violations = 0;
  int64_t failover_successes = 0;
  int64_t stale_reroutes = 0;
  int64_t updates_committed = 0;  ///< mid-schedule updates whose 2PC committed
  int64_t updates_aborted = 0;    ///< ... aborted or failed cleanly
};

struct ChaosConfig {
  uint64_t seed = 1;
  /// Self-test mode: corrupt shard 0's primary fragment before every run,
  /// so a surviving run diverges from the baseline. The byte-identity
  /// checker must flag it — proving the detector is not vacuous.
  bool sabotage_divergence = false;
  /// Mid-schedule writes (DESIGN.md §17): before the read broadcast, an
  /// updating broadcast (`u:stamp()`, repeatable isolation) runs under the
  /// armed chaos schedule — kills, revives, and catalog bumps land mid-2PC.
  /// The byte-identity baseline then depends on the commit outcome, and the
  /// replica-convergence invariant checks every copy after quiesce+repair.
  bool with_updates = false;
  /// Self-test mode for the convergence detector: after the queries, write
  /// shard 0's primary fragment DIRECTLY (no 2PC, no version advance) —
  /// repair must NOT mask it (there is no version lag to see), so the
  /// replica-convergence check must fire. Proves the detector is not
  /// satisfied by "repair ran".
  bool sabotage_primary_only_write = false;
};

/// Systematic membership-chaos exploration (DESIGN.md §14): the fixed
/// workload — a broadcast `execute at {"shard:auctions.xml"}` over a
/// 3-shard replicated XMark deployment — runs under an enumerated grid
/// (and, past the grid, a seeded random sample) of {replication factor} x
/// {kill set} x {kill/revive instant} x {catalog bump instant} x {circuit
/// breaker}. Invariants asserted after every run:
///   1. byte-identity  — a run that returns a result returns exactly the
///      chaos-free baseline (replica answers are indistinguishable);
///   2. replica-coverage — when surviving replicas cover every shard, the
///      query MUST survive (failover finds the live copy);
///   3. clean-fault — a failing run fails with a single retriable-class
///      fault (network / deadline), never anything half-merged;
///   4. no-hang — the query consumes at most the deadline budget (plus
///      one message of slack) of virtual time;
///   5. single-reroute — an epoch fence triggers at most one catalog
///      refetch + re-dispatch per query;
///   6. replica-convergence — after quiesce (partitions healed, in-doubt
///      drained, lagging copies repaired), EVERY copy of every auctions
///      fragment is byte-identical to the chaos-free serial state — the
///      updated state when the mid-schedule 2PC committed, the original
///      otherwise;
///   7. update-survival — with no kills and no catalog bump scheduled,
///      the mid-schedule updating broadcast has no excuse not to commit.
///      A racing bump is a legitimate abort: updating broadcasts never
///      re-dispatch after the StaleCatalog fence (the first attempt may
///      already have staged calls, so a re-route would apply them twice).
class ChaosExplorer {
 public:
  explicit ChaosExplorer(const ChaosConfig& config = {});
  ~ChaosExplorer();

  /// Number of systematically enumerated grid points; index >= GridSize()
  /// is sampled randomly.
  int GridSize() const;

  /// Deterministically derives schedule `index` of this explorer's seed.
  ChaosSchedule MakeSchedule(int index) const;

  /// Builds a fresh replicated deployment, injects the schedule through
  /// the simulated network's post-hook, runs the workload, and checks the
  /// invariants.
  ChaosResult RunSchedule(const ChaosSchedule& schedule);

  const ChaosStats& stats() const { return stats_; }

 private:
  ChaosConfig config_;
  ChaosStats stats_;
  std::string baseline_;  ///< chaos-free normalized broadcast result
  /// Same broadcast after the chaos-free update committed (dual baseline:
  /// which one a surviving read must match depends on the 2PC outcome).
  std::string baseline_updated_;
  /// Chaos-free serialized bytes of every auctions fragment, before and
  /// after the update — what replica-convergence compares every copy to.
  std::vector<std::string> frag_baseline_;
  std::vector<std::string> frag_updated_;
};

/// Self-contained repro file for a chaos invariant violation; replay with
/// fuzz_schedules --chaos --replay (the file carries seed + index).
std::string FormatChaosRepro(const ChaosResult& r);
StatusOr<ChaosSchedule> ParseChaosRepro(const std::string& content);

// ---------------------------------------------------------------------------
// Elastic membership chaos (DESIGN.md §16): beyond the fixed kill-mask grid,
// peers JOIN the fleet mid-run, shards REBALANCE to other peers through
// catalog version bumps, and partitions heal — all while a read workload is
// in flight. Events fire at post serials through the simulated network's
// hook, so a run is a pure function of (seed, index).
// ---------------------------------------------------------------------------

/// One elastic-membership event. Peer slots: 0..3 are the base shard
/// peers, 4..5 are spares that exist only after a kJoin targets them.
/// Events aimed at a slot that does not exist yet are no-ops — the
/// sampler stays simple and every schedule is valid by construction.
struct ElasticEvent {
  enum Kind {
    kKill,       ///< disconnect the peer (partition, dials refused)
    kRevive,     ///< reconnect it (partition heals)
    kJoin,       ///< add spare `peer` to the fleet and rebalance `shard`
                 ///< onto it (catalog bump)
    kRebalance,  ///< move `shard`'s primary to existing peer `peer`
    kBump,       ///< identical catalog re-registration (version only)
  };
  Kind kind = kBump;
  int serial = 0;  ///< 1-based post serial at which the event fires
  int peer = 0;    ///< target peer slot
  int shard = 0;   ///< shard index (kJoin / kRebalance)
};

/// A sampled elastic schedule — pure function of (seed, index), like
/// ChaosSchedule.
struct ElasticSchedule {
  uint64_t seed = 0;
  int index = 0;
  int replication_factor = 1;
  std::vector<ElasticEvent> events;

  std::string Describe() const;
};

/// Outcome of one elastic run (several queries under one event schedule).
struct ElasticResult {
  ElasticSchedule schedule;
  bool ok = true;                       ///< all invariants held
  std::vector<std::string> violations;  ///< "invariant: detail" lines

  int queries_ok = 0;
  int queries_failed = 0;
  int events_fired = 0;
  bool update_ran = false;        ///< an updating query ran mid-schedule
  bool update_committed = false;  ///< ... and its 2PC committed
  int64_t failover_successes = 0;
  int64_t stale_reroutes = 0;
  int64_t elapsed_us = 0;  ///< virtual time of the whole run
};

struct ElasticStats {
  int64_t explored = 0;
  int64_t queries_ok = 0;
  int64_t clean_faults = 0;
  int64_t violations = 0;
  int64_t events_fired = 0;
  int64_t failover_successes = 0;
  int64_t stale_reroutes = 0;
  int64_t updates_committed = 0;  ///< mid-schedule updates whose 2PC committed
  int64_t updates_aborted = 0;    ///< ... aborted or failed cleanly
};

struct ElasticConfig {
  uint64_t seed = 1;
  /// Self-test mode: at quiesce, instead of healing, permanently
  /// disconnect every peer serving shard 0 of the auctions collection.
  /// The no-lost-shard detector must fire — proving it non-vacuous.
  bool sabotage_lost_shard = false;
  /// Mid-schedule writes (DESIGN.md §17): the middle query of the workload
  /// becomes an updating broadcast (`u:stamp()`, repeatable isolation) that
  /// runs while joins, rebalances, kills, and bumps fire. Later reads match
  /// the updated baseline iff the 2PC committed, and after quiesce+repair
  /// the replica-convergence invariant checks every catalog-listed copy —
  /// including fragments freshly materialized by a rebalance, which start
  /// at data version 0 and must be caught up by anti-entropy repair.
  bool with_updates = false;
};

/// Elastic-membership exploration over a 4-shard replicated XMark fleet
/// plus two joinable spares. Every run replays a fixed read workload
/// (broadcast scatter-gathers interleaved with routed point reads) while
/// the sampled event schedule fires, then asserts six invariants:
///   1. byte-identity  — every surviving query result equals the
///      chaos-free baseline exactly;
///   2. replica-coverage — when every shard keeps a live, never-killed
///      serving peer and at most one catalog mutation raced the query,
///      the query MUST survive;
///   3. clean-fault — a failing query fails with one retriable-class
///      fault (network / deadline / stale-catalog), never half-merged;
///   4. no-hang — each query consumes at most the deadline budget plus
///      one message of slack;
///   5. single-reroute — at most one catalog refetch + re-dispatch per
///      query when at most one mutation raced it;
///   6. no-lost-shard — after quiesce (partitions healed, in-doubt 2PC
///      drained, lagging copies repaired), every shard of every
///      collection is served by some live peer, and scatter-gather
///      probes over both collections are byte-identical to the
///      chaos-free baseline (the updated one iff the mid-schedule 2PC
///      committed);
///   7. replica-convergence (with_updates) — after quiesce+repair, every
///      catalog-listed copy of every auctions fragment — rebalanced-in
///      copies included — is byte-identical to the chaos-free serial
///      state;
///   8. update-survival (with_updates) — when no kill event exists
///      anywhere in the schedule and no catalog mutation raced it, the
///      updating broadcast has no excuse not to commit.
class ElasticChaosExplorer {
 public:
  explicit ElasticChaosExplorer(const ElasticConfig& config = {});
  ~ElasticChaosExplorer();

  /// Deterministically derives sampled schedule `index` under this
  /// explorer's seed (no systematic grid — the space is combinatorial).
  ElasticSchedule MakeSchedule(int index) const;

  ElasticResult RunSchedule(const ElasticSchedule& schedule);

  const ElasticStats& stats() const { return stats_; }

 private:
  ElasticConfig config_;
  ElasticStats stats_;
  std::string baseline_broadcast_;  ///< chaos-free Q_B1 result
  std::string baseline_persons_;    ///< chaos-free persons-count probe
  /// Same broadcast after the chaos-free serial update committed.
  std::string baseline_broadcast_updated_;
  /// Chaos-free serialized bytes of every auctions fragment before and
  /// after the update — what replica-convergence compares copies to.
  std::vector<std::string> frag_baseline_;
  std::vector<std::string> frag_updated_;
  /// Unsharded reference network, kept alive to answer point-read
  /// baselines on demand (cached by person key).
  std::unique_ptr<class ElasticBaseline> baseline_;
};

/// Repro file for an elastic invariant violation; replay with
/// fuzz_schedules --chaos-elastic --replay (carries seed + index).
std::string FormatElasticRepro(const ElasticResult& r);
StatusOr<ElasticSchedule> ParseElasticRepro(const std::string& content);

}  // namespace xrpc::fuzz

#endif  // XRPC_FUZZ_CHAOS_H_
