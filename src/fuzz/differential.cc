#include "fuzz/differential.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "xmark/shard_loader.h"
#include "xmark/xmark.h"
#include "xml/serializer.h"

namespace xrpc::fuzz {

namespace {

/// Canonical rendering of one atomic value: numeric values of equal
/// magnitude render identically regardless of their static type, so
/// xs:integer 4 from one engine matches xs:double 4 from the other.
std::string CanonicalAtomic(const xdm::AtomicValue& v) {
  if (!v.IsNumeric()) return v.ToString();
  double d = v.AsDouble();
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "INF" : "-INF";
  if (d == static_cast<double>(static_cast<int64_t>(d))) {
    return std::to_string(static_cast<int64_t>(d));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", d);
  return buf;
}

}  // namespace

std::string NormalizeSequence(const xdm::Sequence& seq) {
  std::string out;
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) out += " ";
    const xdm::Item& item = seq[i];
    if (item.IsNode()) {
      out += xml::SerializeNode(*item.node());
    } else {
      out += CanonicalAtomic(item.atomic());
    }
  }
  return out;
}

// ------------------------------------------------------------- skiplist

std::string DifferentialHarness::SkiplistReason(
    const std::string& query_text) {
  // Known, documented engine spec gaps. Every entry must explain WHY the
  // two engines answer differently and why that is accepted rather than
  // fixed; keep this list short and auditable.
  //
  // (1) fn:trace is interpreter-only debugging aid; the relational engine
  //     has no tracing channel, so behaviour differs by design.
  if (query_text.find("trace(") != std::string::npos) {
    return "fn:trace is an interpreter-only debugging aid";
  }
  // (2) fn:put bypasses the PUL on the interpreter's immediate path but is
  //     rejected on the relational read-only path; the generator does not
  //     emit it, but replayed/corpus queries might.
  if (query_text.find("put(") != std::string::npos) {
    return "fn:put document creation is outside the relational subset";
  }
  return "";
}

// ------------------------------------------------------ fixture plumbing

DifferentialHarness::DifferentialHarness(const DifferentialConfig& config)
    : config_(config) {
  BuildFixtures();
}

DifferentialHarness::~DifferentialHarness() = default;

void DifferentialHarness::BuildFixtures() {
  xmark::XmarkConfig xcfg;
  xcfg.num_persons = config_.num_persons;
  xcfg.num_closed_auctions = config_.num_closed_auctions;
  xcfg.num_open_auctions = config_.num_open_auctions;
  xcfg.num_items = config_.num_items;
  xcfg.num_matches = config_.num_matches;
  xcfg.annotation_bytes = 16;

  const std::string persons = xmark::GeneratePersons(xcfg);
  const std::string auctions = xmark::GenerateAuctions(xcfg);
  const std::string films = xmark::GenerateFilmDb(2);

  auto build = [&](core::EngineKind kind) {
    auto net = std::make_unique<core::PeerNetwork>();
    core::Peer* p0 = net->AddPeer("p0", kind);
    core::Peer* b = net->AddPeer("B", kind);
    (void)p0->AddDocument("persons.xml", persons);
    (void)p0->AddDocument("films.xml", films);
    (void)b->AddDocument("auctions.xml", auctions);
    const std::string mod_b = xmark::FunctionsBModuleSource("xrpc://p0");
    const std::string mod_tst = xmark::TestModuleSource();
    for (core::Peer* p : {p0, b}) {
      (void)p->RegisterModule(mod_b, "b.xq");
      (void)p->RegisterModule(mod_tst, "test.xq");
    }
    if (config_.num_shards > 0) {
      xmark::ShardLoadOptions sopts;
      sopts.num_shards = config_.num_shards;
      sopts.engine = kind;
      (void)xmark::LoadShardedXmark(net.get(), xcfg, sopts);
    }
    return net;
  };
  relational_net_ = build(core::EngineKind::kRelational);
  interpreter_net_ = build(core::EngineKind::kInterpreter);
  if (config_.exec_threads > 1) {
    // Only the relational network goes parallel: the interpreter is the
    // serial reference, so every agreement doubles as a byte-identity
    // check of the morsel executor (DESIGN.md §15).
    relational_net_->EnableParallelExec(config_.exec_threads);
  }
}

std::string DifferentialHarness::RunOn(core::PeerNetwork* net,
                                       const std::string& query, bool* ok,
                                       bool* fell_back) {
  auto report = net->Execute("p0", query);
  if (!report.ok()) {
    *ok = false;
    return "ERROR: " + report.status().ToString();
  }
  *ok = true;
  if (fell_back != nullptr) *fell_back = report->fell_back;
  return NormalizeSequence(report->result);
}

std::string DifferentialHarness::CaptureState(core::PeerNetwork* net) {
  std::string out;
  for (const char* peer_name : {"p0", "B"}) {
    core::Peer* peer = net->GetPeer(peer_name);
    for (const std::string& doc_name : peer->database().DocumentNames()) {
      auto doc = peer->database().GetDocument(doc_name);
      out += std::string(peer_name) + ":" + doc_name + "=";
      out += doc.ok() ? xml::SerializeNode(*doc.value()) : "<unreadable/>";
      out += "\n";
    }
  }
  return out;
}

Comparison DifferentialHarness::Run(const std::string& query_text,
                                    bool updating) {
  Comparison c;
  std::string reason = SkiplistReason(query_text);
  if (!reason.empty()) {
    c.skipped = true;
    c.skip_reason = std::move(reason);
    c.agree = true;
    return c;
  }

  c.relational_result = RunOn(relational_net_.get(), query_text,
                              &c.relational_ok, &c.fell_back);
  c.interpreter_result =
      RunOn(interpreter_net_.get(), query_text, &c.interpreter_ok, nullptr);
  if (updating) {
    c.relational_state = CaptureState(relational_net_.get());
    c.interpreter_state = CaptureState(interpreter_net_.get());
    // Every updating query may have touched documents: restore pristine
    // fixtures for the next query (both networks, keeping them identical).
    BuildFixtures();
  }

  if (c.relational_ok != c.interpreter_ok) {
    c.agree = false;
  } else if (!c.relational_ok) {
    // Both errored: agreement (messages legitimately differ).
    c.agree = true;
  } else {
    c.agree = c.relational_result == c.interpreter_result &&
              c.relational_state == c.interpreter_state;
  }
  if (config_.force_divergence && c.agree && c.relational_ok &&
      !c.relational_result.empty()) {
    c.agree = false;  // self-test of the minimize/repro pipeline
  }
  return c;
}

bool DifferentialHarness::RunAndMinimize(GeneratedQuery* query,
                                         Divergence* out) {
  const std::string text = query->Text();
  Comparison c = Run(text, query->updating);
  ++stats_.executed;
  if (query->updating) ++stats_.updating;
  if (c.skipped) {
    ++stats_.skipped;
    return false;
  }
  if (c.fell_back) ++stats_.fell_back;
  if (!c.relational_ok && !c.interpreter_ok) ++stats_.both_error;
  if (c.agree) {
    ++stats_.agreed;
    return false;
  }
  ++stats_.diverged;

  // Hierarchical minimization: repeatedly collapse any reducible subtree
  // whose removal preserves the divergence, until a fixpoint.
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    std::vector<GenNode*> nodes;
    query->root->Walk([&nodes](GenNode* n) { nodes.push_back(n); });
    for (GenNode* n : nodes) {
      if (n == query->root.get() || n->collapsed) continue;
      if (n->reduced.empty() && !n->droppable) continue;
      n->collapsed = true;
      const std::string candidate = query->root->Render();
      Comparison cc = Run(candidate, query->updating);
      if (cc.skipped || cc.agree) {
        n->collapsed = false;  // reduction lost the divergence; undo
      } else {
        shrunk = true;
      }
    }
  }

  out->original_query = text;
  out->query = query->root->Render();
  out->comparison = Run(out->query, query->updating);
  out->seed = query->seed;
  out->index = query->index;
  out->updating = query->updating;
  out->force = config_.force_divergence;
  return true;
}

// ------------------------------------------------------------ repro files

std::string FormatReproFile(const Divergence& d) {
  std::string out;
  out += "# xrpc-fuzz differential repro\n";
  out += "seed: " + std::to_string(d.seed) + "\n";
  out += "index: " + std::to_string(d.index) + "\n";
  out += "updating: " + std::to_string(d.updating ? 1 : 0) + "\n";
  out += "force: " + std::to_string(d.force ? 1 : 0) + "\n";
  out += "--- minimized ---\n" + d.query + "\n";
  out += "--- original ---\n" + d.original_query + "\n";
  out += "--- relational ---\n" + d.comparison.relational_result + "\n";
  out += "--- interpreter ---\n" + d.comparison.interpreter_result + "\n";
  return out;
}

StatusOr<Divergence> ParseReproFile(const std::string& content) {
  Divergence d;
  size_t pos = 0;
  std::string* section = nullptr;
  bool saw_minimized = false;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("seed: ", 0) == 0) {
      d.seed = std::strtoull(line.c_str() + 6, nullptr, 10);
    } else if (line.rfind("index: ", 0) == 0) {
      d.index = std::atoi(line.c_str() + 7);
    } else if (line.rfind("updating: ", 0) == 0) {
      d.updating = std::atoi(line.c_str() + 10) != 0;
    } else if (line.rfind("force: ", 0) == 0) {
      d.force = std::atoi(line.c_str() + 7) != 0;
    } else if (line == "--- minimized ---") {
      section = &d.query;
      saw_minimized = true;
    } else if (line == "--- original ---") {
      section = &d.original_query;
    } else if (line == "--- relational ---") {
      section = &d.comparison.relational_result;
    } else if (line == "--- interpreter ---") {
      section = &d.comparison.interpreter_result;
    } else if (section != nullptr) {
      *section += (section->empty() ? "" : "\n") + line;
    }
  }
  if (!saw_minimized || d.query.empty()) {
    return Status::InvalidArgument("repro file has no minimized query");
  }
  return d;
}

}  // namespace xrpc::fuzz
