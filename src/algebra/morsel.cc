#include "algebra/morsel.h"

#include <algorithm>

namespace xrpc::algebra {

std::vector<Morsel> SplitRows(size_t num_rows, size_t target_rows) {
  std::vector<Morsel> out;
  if (num_rows == 0) return out;
  if (target_rows == 0) {
    out.push_back({0, num_rows});
    return out;
  }
  for (size_t begin = 0; begin < num_rows; begin += target_rows) {
    out.push_back({begin, std::min(num_rows, begin + target_rows)});
  }
  return out;
}

std::vector<Morsel> SplitIterAligned(const Table& t, size_t target_rows) {
  const size_t n = t.NumRows();
  std::vector<Morsel> out;
  if (n == 0) return out;
  if (target_rows == 0) {
    out.push_back({0, n});
    return out;
  }
  size_t begin = 0;
  size_t i = 0;
  while (i < n) {
    // Extend to the end of the current iter group.
    const int64_t iter = t.Iter(i);
    do {
      ++i;
    } while (i < n && t.Iter(i) == iter);
    if (i - begin >= target_rows) {
      out.push_back({begin, i});
      begin = i;
    }
  }
  if (begin < n) out.push_back({begin, n});
  return out;
}

}  // namespace xrpc::algebra
