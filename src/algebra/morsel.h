#ifndef XRPC_ALGEBRA_MORSEL_H_
#define XRPC_ALGEBRA_MORSEL_H_

#include <cstddef>
#include <vector>

#include "algebra/table.h"

namespace xrpc::algebra {

/// A half-open row range [begin, end) of a table — the unit of work the
/// morsel-parallel executor schedules onto pool workers.
struct Morsel {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Splits `num_rows` rows into chunks of at most `target_rows` rows.
/// target_rows <= 0 yields a single morsel. Covers every row exactly once,
/// in order.
std::vector<Morsel> SplitRows(size_t num_rows, size_t target_rows);

/// Splits a loop-lifted table into morsels of roughly `target_rows` rows
/// WITHOUT ever splitting an `iter` group: a morsel boundary is only
/// placed where the iter column changes value, so every loop iteration is
/// evaluated by exactly one worker and per-iteration state (position
/// numbering, predicate verdicts, document-order runs) never straddles
/// workers. Requires only that equal iters are contiguous (the canonical
/// sorted-by-iter invariant); a single iter group larger than target_rows
/// becomes one oversized morsel. Covers every row exactly once, in order —
/// concatenating per-morsel outputs in morsel order therefore reproduces
/// the serial output byte for byte.
std::vector<Morsel> SplitIterAligned(const Table& t, size_t target_rows);

}  // namespace xrpc::algebra

#endif  // XRPC_ALGEBRA_MORSEL_H_
