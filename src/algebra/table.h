#ifndef XRPC_ALGEBRA_TABLE_H_
#define XRPC_ALGEBRA_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "base/statusor.h"
#include "xdm/item.h"

namespace xrpc::algebra {

/// A column value: either a number (iter/pos columns) or an XDM item (item
/// columns). MonetDB stores these as typed BATs; we use a tagged cell per
/// column for clarity at equivalent asymptotics.
struct Cell {
  enum class Kind { kInt, kItem };
  Kind kind = Kind::kInt;
  int64_t num = 0;
  xdm::Item item;

  static Cell Int(int64_t v) {
    Cell c;
    c.kind = Kind::kInt;
    c.num = v;
    return c;
  }
  static Cell OfItem(xdm::Item item) {
    Cell c;
    c.kind = Kind::kItem;
    c.item = std::move(item);
    return c;
  }

  /// Grouping/join key: numbers by value; atomic items by type+lexical
  /// form; nodes by identity.
  std::string Key() const;
};

/// Equality used by δ (duplicate elimination) and equi-joins.
bool CellEquals(const Cell& a, const Cell& b);

/// A relational table in the Pathfinder style: named columns over rows.
/// The canonical XQuery value representation is the iter|pos|item schema
/// of Section 3.1.
///
/// Storage is COLUMNAR (one contiguous Cell vector per column), matching
/// MonetDB's BAT layout: the hot loop-lifted kernels (step expansion,
/// sort, merge, join) scan and gather single columns without touching the
/// others, and appending a row costs no per-row heap allocation.
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> column_names)
      : names_(std::move(column_names)), cols_(names_.size()) {}

  /// Creates the canonical empty iter|pos|item table.
  static Table IterPosItem();

  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return names_.size(); }
  const std::vector<std::string>& column_names() const { return names_; }

  /// Index of a column; -1 if absent.
  int ColumnIndex(const std::string& name) const;

  /// Reserves capacity in every column (append-heavy kernels).
  void Reserve(size_t rows) {
    for (auto& col : cols_) col.reserve(rows);
  }

  void AppendRow(std::vector<Cell> row);
  /// Materializes row `i` (a gather across columns).
  std::vector<Cell> Row(size_t i) const;

  const Cell& At(size_t row, int col) const { return cols_[col][row]; }

  /// Whole-column access for branch-light kernels.
  const std::vector<Cell>& Column(size_t col) const { return cols_[col]; }

  /// Convenience accessors for the canonical schema.
  int64_t Iter(size_t row) const { return cols_[0][row].num; }
  int64_t Pos(size_t row) const { return cols_[1][row].num; }
  const xdm::Item& ItemAt(size_t row) const { return cols_[2][row].item; }
  void AppendIPI(int64_t iter, int64_t pos, xdm::Item item) {
    cols_[0].push_back(Cell::Int(iter));
    cols_[1].push_back(Cell::Int(pos));
    cols_[2].push_back(Cell::OfItem(std::move(item)));
    ++num_rows_;
  }

  /// Appends every row of `other` (schemas must match positionally) —
  /// per-column bulk append, the morsel-merge concatenation primitive.
  void AppendRowsFrom(const Table& other);
  /// Move flavor: steals `other`'s cells (clears it). When this table is
  /// still empty the columns are adopted wholesale (no per-cell work).
  void AppendRowsFrom(Table&& other);

  /// New table holding rows `idx` in the given order (per-column gather).
  Table GatherRows(const std::vector<size_t>& idx) const;

  /// New table holding (renamed) copies of the given columns — the
  /// columnar π kernel: whole-column copies, no per-row work.
  Table CopyColumns(const std::vector<int>& sources,
                    std::vector<std::string> new_names) const;

  /// Renders the table for debugging and the Figure 1 demonstration.
  std::string ToString() const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<Cell>> cols_;  ///< cols_[c].size() == num_rows_
  size_t num_rows_ = 0;
};

// ------------------------- Table 1 operators -------------------------

/// σ: keep rows where int column `column` is non-zero (true).
Table Select(const Table& in, const std::string& column);

/// σ with an arbitrary predicate (generalization used by the executor).
Table SelectWhere(const Table& in,
                  const std::function<bool(const std::vector<Cell>&)>& pred);

/// π: project (and rename) columns: each pair is {new_name, old_name}.
StatusOr<Table> Project(
    const Table& in,
    const std::vector<std::pair<std::string, std::string>>& columns);

/// δ: duplicate elimination over all columns.
Table Distinct(const Table& in);

/// ⊎: disjoint union (schemas must match by position).
StatusOr<Table> DisjointUnion(const Table& a, const Table& b);

/// ⋈: equi-join on a.col_a = b.col_b; output columns are a's then b's
/// (b's join column dropped); b column names colliding with a's get a
/// trailing apostrophe.
StatusOr<Table> EquiJoin(const Table& a, const Table& b,
                         const std::string& col_a, const std::string& col_b);

/// ρ: row numbering (DENSE_RANK): appends column `new_column` numbering
/// rows 1..n in the order of `order_columns`, restarting per distinct
/// value of `partition_column` ("" = no partitioning). Stable for equal
/// keys.
StatusOr<Table> RowNumber(const Table& in, const std::string& new_column,
                          const std::vector<std::string>& order_columns,
                          const std::string& partition_column);

/// Literal table constructor.
Table LiteralTable(std::vector<std::string> names,
                   std::vector<std::vector<Cell>> rows);

/// Sorts by the given int columns ascending (executor helper; MonetDB
/// realizes this through ρ + positional access). Already-sorted input is
/// detected in one column scan and returned without the gather.
StatusOr<Table> SortBy(const Table& in,
                       const std::vector<std::string>& columns);

/// Order-preserving scatter-gather merge (DESIGN.md §13): recombines the
/// per-shard result tables of a decomposed Bulk RPC. `sources` are
/// iter|pos|item tables listed in shard-rank order; within each iteration
/// the sources' sequences are concatenated in rank order (then by their
/// own pos) and pos is renumbered densely 1..n, yielding one canonical
/// iter|pos|item table sorted by iter. With a single source this is
/// exactly union + sort-by-iter — the degenerate merge of an unsharded or
/// partition-key-pruned dispatch.
Table ScatterGatherMerge(const std::vector<Table>& sources);

}  // namespace xrpc::algebra

#endif  // XRPC_ALGEBRA_TABLE_H_
