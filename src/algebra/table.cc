#include "algebra/table.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace xrpc::algebra {

std::string Cell::Key() const {
  if (kind == Kind::kInt) return "i" + std::to_string(num);
  if (item.IsNode()) {
    std::ostringstream os;
    os << "n" << static_cast<const void*>(item.node());
    return os.str();
  }
  return std::string("a") + xdm::AtomicTypeName(item.atomic().type()) + "|" +
         item.atomic().ToString();
}

bool CellEquals(const Cell& a, const Cell& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == Cell::Kind::kInt) return a.num == b.num;
  if (a.item.IsNode() != b.item.IsNode()) return false;
  if (a.item.IsNode()) return a.item.node() == b.item.node();
  return a.item.atomic() == b.item.atomic() &&
         a.item.atomic().type() == b.item.atomic().type();
}

Table Table::IterPosItem() { return Table({"iter", "pos", "item"}); }

int Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void Table::AppendRow(std::vector<Cell> row) { rows_.push_back(std::move(row)); }

std::string Table::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < names_.size(); ++i) {
    os << (i ? " | " : "") << names_[i];
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << (i ? " | " : "");
      if (row[i].kind == Cell::Kind::kInt) {
        os << row[i].num;
      } else if (row[i].item.IsNode()) {
        os << "<" << row[i].item.node()->name().Lexical() << ">";
      } else {
        os << "\"" << row[i].item.atomic().ToString() << "\"";
      }
    }
    os << "\n";
  }
  return os.str();
}

Table Select(const Table& in, const std::string& column) {
  int c = in.ColumnIndex(column);
  Table out(in.column_names());
  if (c < 0) return out;
  for (size_t i = 0; i < in.NumRows(); ++i) {
    if (in.At(i, c).kind == Cell::Kind::kInt && in.At(i, c).num != 0) {
      out.AppendRow(in.Row(i));
    }
  }
  return out;
}

Table SelectWhere(const Table& in,
                  const std::function<bool(const std::vector<Cell>&)>& pred) {
  Table out(in.column_names());
  for (size_t i = 0; i < in.NumRows(); ++i) {
    if (pred(in.Row(i))) out.AppendRow(in.Row(i));
  }
  return out;
}

StatusOr<Table> Project(
    const Table& in,
    const std::vector<std::pair<std::string, std::string>>& columns) {
  std::vector<std::string> names;
  std::vector<int> sources;
  for (const auto& [new_name, old_name] : columns) {
    int c = in.ColumnIndex(old_name);
    if (c < 0) {
      return Status::Internal("project: no column named " + old_name);
    }
    names.push_back(new_name);
    sources.push_back(c);
  }
  Table out(std::move(names));
  for (size_t i = 0; i < in.NumRows(); ++i) {
    std::vector<Cell> row;
    row.reserve(sources.size());
    for (int c : sources) row.push_back(in.At(i, static_cast<size_t>(c)));
    out.AppendRow(std::move(row));
  }
  return out;
}

Table Distinct(const Table& in) {
  Table out(in.column_names());
  std::set<std::string> seen;
  for (size_t i = 0; i < in.NumRows(); ++i) {
    std::string key;
    for (const Cell& c : in.Row(i)) {
      key += c.Key();
      key += '\x1f';
    }
    if (seen.insert(key).second) out.AppendRow(in.Row(i));
  }
  return out;
}

StatusOr<Table> DisjointUnion(const Table& a, const Table& b) {
  if (a.NumColumns() != b.NumColumns()) {
    return Status::Internal("disjoint union: schema mismatch");
  }
  Table out(a.column_names());
  for (size_t i = 0; i < a.NumRows(); ++i) out.AppendRow(a.Row(i));
  for (size_t i = 0; i < b.NumRows(); ++i) out.AppendRow(b.Row(i));
  return out;
}

StatusOr<Table> EquiJoin(const Table& a, const Table& b,
                         const std::string& col_a, const std::string& col_b) {
  int ca = a.ColumnIndex(col_a);
  int cb = b.ColumnIndex(col_b);
  if (ca < 0 || cb < 0) {
    return Status::Internal("join: missing column " + col_a + "/" + col_b);
  }
  std::vector<std::string> names = a.column_names();
  std::vector<int> b_cols;
  for (size_t i = 0; i < b.NumColumns(); ++i) {
    if (static_cast<int>(i) == cb) continue;
    std::string name = b.column_names()[i];
    while (std::find(names.begin(), names.end(), name) != names.end()) {
      name += "'";
    }
    names.push_back(name);
    b_cols.push_back(static_cast<int>(i));
  }
  // Hash join: build on b.
  std::multimap<std::string, size_t> build;
  for (size_t i = 0; i < b.NumRows(); ++i) {
    build.emplace(b.At(i, cb).Key(), i);
  }
  Table out(std::move(names));
  for (size_t i = 0; i < a.NumRows(); ++i) {
    auto [lo, hi] = build.equal_range(a.At(i, ca).Key());
    for (auto it = lo; it != hi; ++it) {
      std::vector<Cell> row = a.Row(i);
      for (int c : b_cols) {
        row.push_back(b.At(it->second, static_cast<size_t>(c)));
      }
      out.AppendRow(std::move(row));
    }
  }
  return out;
}

StatusOr<Table> RowNumber(const Table& in, const std::string& new_column,
                          const std::vector<std::string>& order_columns,
                          const std::string& partition_column) {
  std::vector<int> order;
  for (const std::string& c : order_columns) {
    int idx = in.ColumnIndex(c);
    if (idx < 0) return Status::Internal("rownum: no column " + c);
    order.push_back(idx);
  }
  int part = -1;
  if (!partition_column.empty()) {
    part = in.ColumnIndex(partition_column);
    if (part < 0) {
      return Status::Internal("rownum: no column " + partition_column);
    }
  }
  // Stable sort of row indices by (partition, order columns).
  std::vector<size_t> idx(in.NumRows());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  auto cell_less = [](const Cell& x, const Cell& y) {
    if (x.kind == Cell::Kind::kInt && y.kind == Cell::Kind::kInt) {
      return x.num < y.num;
    }
    return x.Key() < y.Key();
  };
  std::stable_sort(idx.begin(), idx.end(), [&](size_t x, size_t y) {
    if (part >= 0) {
      const Cell& px = in.At(x, part);
      const Cell& py = in.At(y, part);
      if (!CellEquals(px, py)) return cell_less(px, py);
    }
    for (int c : order) {
      const Cell& cx = in.At(x, c);
      const Cell& cy = in.At(y, c);
      if (!CellEquals(cx, cy)) return cell_less(cx, cy);
    }
    return false;
  });
  std::vector<std::string> names = in.column_names();
  names.push_back(new_column);
  Table out(std::move(names));
  // Assign ranks in sorted order, then restore original row order.
  std::vector<int64_t> ranks(in.NumRows(), 0);
  int64_t rank = 0;
  for (size_t k = 0; k < idx.size(); ++k) {
    bool new_partition =
        k == 0 || (part >= 0 && !CellEquals(in.At(idx[k], part),
                                            in.At(idx[k - 1], part)));
    rank = new_partition ? 1 : rank + 1;
    ranks[idx[k]] = rank;
  }
  for (size_t i = 0; i < in.NumRows(); ++i) {
    std::vector<Cell> row = in.Row(i);
    row.push_back(Cell::Int(ranks[i]));
    out.AppendRow(std::move(row));
  }
  return out;
}

Table LiteralTable(std::vector<std::string> names,
                   std::vector<std::vector<Cell>> rows) {
  Table out(std::move(names));
  for (auto& row : rows) out.AppendRow(std::move(row));
  return out;
}

StatusOr<Table> SortBy(const Table& in,
                       const std::vector<std::string>& columns) {
  std::vector<int> cols;
  for (const std::string& c : columns) {
    int idx = in.ColumnIndex(c);
    if (idx < 0) return Status::Internal("sort: no column " + c);
    cols.push_back(idx);
  }
  std::vector<size_t> idx(in.NumRows());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&](size_t x, size_t y) {
    for (int c : cols) {
      int64_t vx = in.At(x, c).num;
      int64_t vy = in.At(y, c).num;
      if (vx != vy) return vx < vy;
    }
    return false;
  });
  Table out(in.column_names());
  for (size_t i : idx) out.AppendRow(in.Row(i));
  return out;
}

Table ScatterGatherMerge(const std::vector<Table>& sources) {
  // Tag every row with its source rank, stable-sort by (iter, rank, pos),
  // then renumber pos densely per iteration. Stability keeps equal keys in
  // append order, so a source whose rows are already grouped per call
  // keeps each call's sequence order intact.
  struct TaggedRow {
    int64_t iter;
    int64_t rank;
    int64_t pos;
    size_t source;
    size_t row;
  };
  std::vector<TaggedRow> rows;
  for (size_t s = 0; s < sources.size(); ++s) {
    const Table& t = sources[s];
    for (size_t i = 0; i < t.NumRows(); ++i) {
      rows.push_back({t.Iter(i), static_cast<int64_t>(s), t.Pos(i), s, i});
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const TaggedRow& a, const TaggedRow& b) {
                     if (a.iter != b.iter) return a.iter < b.iter;
                     if (a.rank != b.rank) return a.rank < b.rank;
                     return a.pos < b.pos;
                   });
  Table out = Table::IterPosItem();
  int64_t current_iter = 0;
  int64_t next_pos = 1;
  bool have_iter = false;
  for (const TaggedRow& r : rows) {
    if (!have_iter || r.iter != current_iter) {
      current_iter = r.iter;
      next_pos = 1;
      have_iter = true;
    }
    out.AppendIPI(r.iter, next_pos++, sources[r.source].ItemAt(r.row));
  }
  return out;
}

}  // namespace xrpc::algebra
