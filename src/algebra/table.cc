#include "algebra/table.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace xrpc::algebra {

std::string Cell::Key() const {
  if (kind == Kind::kInt) return "i" + std::to_string(num);
  if (item.IsNode()) {
    std::ostringstream os;
    os << "n" << static_cast<const void*>(item.node());
    return os.str();
  }
  return std::string("a") + xdm::AtomicTypeName(item.atomic().type()) + "|" +
         item.atomic().ToString();
}

bool CellEquals(const Cell& a, const Cell& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == Cell::Kind::kInt) return a.num == b.num;
  if (a.item.IsNode() != b.item.IsNode()) return false;
  if (a.item.IsNode()) return a.item.node() == b.item.node();
  return a.item.atomic() == b.item.atomic() &&
         a.item.atomic().type() == b.item.atomic().type();
}

Table Table::IterPosItem() { return Table({"iter", "pos", "item"}); }

int Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void Table::AppendRow(std::vector<Cell> row) {
  for (size_t c = 0; c < cols_.size(); ++c) {
    cols_[c].push_back(std::move(row[c]));
  }
  ++num_rows_;
}

std::vector<Cell> Table::Row(size_t i) const {
  std::vector<Cell> row;
  row.reserve(cols_.size());
  for (const auto& col : cols_) row.push_back(col[i]);
  return row;
}

void Table::AppendRowsFrom(const Table& other) {
  for (size_t c = 0; c < cols_.size(); ++c) {
    cols_[c].insert(cols_[c].end(), other.cols_[c].begin(),
                    other.cols_[c].end());
  }
  num_rows_ += other.num_rows_;
}

void Table::AppendRowsFrom(Table&& other) {
  if (num_rows_ == 0 && cols_.size() == other.cols_.size()) {
    cols_ = std::move(other.cols_);
    num_rows_ = other.num_rows_;
  } else {
    for (size_t c = 0; c < cols_.size(); ++c) {
      cols_[c].insert(cols_[c].end(),
                      std::make_move_iterator(other.cols_[c].begin()),
                      std::make_move_iterator(other.cols_[c].end()));
    }
    num_rows_ += other.num_rows_;
  }
  other.cols_.assign(other.names_.size(), {});
  other.num_rows_ = 0;
}

Table Table::CopyColumns(const std::vector<int>& sources,
                         std::vector<std::string> new_names) const {
  Table out(std::move(new_names));
  for (size_t k = 0; k < sources.size(); ++k) {
    out.cols_[k] = cols_[sources[k]];
  }
  out.num_rows_ = num_rows_;
  return out;
}

Table Table::GatherRows(const std::vector<size_t>& idx) const {
  Table out(names_);
  for (size_t c = 0; c < cols_.size(); ++c) {
    const std::vector<Cell>& src = cols_[c];
    std::vector<Cell>& dst = out.cols_[c];
    dst.reserve(idx.size());
    for (size_t i : idx) dst.push_back(src[i]);
  }
  out.num_rows_ = idx.size();
  return out;
}

std::string Table::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < names_.size(); ++i) {
    os << (i ? " | " : "") << names_[i];
  }
  os << "\n";
  for (size_t r = 0; r < num_rows_; ++r) {
    for (size_t c = 0; c < cols_.size(); ++c) {
      os << (c ? " | " : "");
      const Cell& cell = cols_[c][r];
      if (cell.kind == Cell::Kind::kInt) {
        os << cell.num;
      } else if (cell.item.IsNode()) {
        os << "<" << cell.item.node()->name().Lexical() << ">";
      } else {
        os << "\"" << cell.item.atomic().ToString() << "\"";
      }
    }
    os << "\n";
  }
  return os.str();
}

Table Select(const Table& in, const std::string& column) {
  int c = in.ColumnIndex(column);
  Table out(in.column_names());
  if (c < 0) return out;
  // One pass over the predicate column to build the selection vector, then
  // a per-column gather — the other columns are never inspected.
  const std::vector<Cell>& col = in.Column(static_cast<size_t>(c));
  std::vector<size_t> idx;
  for (size_t i = 0; i < col.size(); ++i) {
    if (col[i].kind == Cell::Kind::kInt && col[i].num != 0) idx.push_back(i);
  }
  return in.GatherRows(idx);
}

Table SelectWhere(const Table& in,
                  const std::function<bool(const std::vector<Cell>&)>& pred) {
  std::vector<size_t> idx;
  for (size_t i = 0; i < in.NumRows(); ++i) {
    if (pred(in.Row(i))) idx.push_back(i);
  }
  return in.GatherRows(idx);
}

StatusOr<Table> Project(
    const Table& in,
    const std::vector<std::pair<std::string, std::string>>& columns) {
  std::vector<std::string> names;
  std::vector<int> sources;
  for (const auto& [new_name, old_name] : columns) {
    int c = in.ColumnIndex(old_name);
    if (c < 0) {
      return Status::Internal("project: no column named " + old_name);
    }
    names.push_back(new_name);
    sources.push_back(c);
  }
  // Columnar projection is a whole-column copy per kept column.
  return in.CopyColumns(sources, std::move(names));
}

Table Distinct(const Table& in) {
  std::set<std::string> seen;
  std::vector<size_t> idx;
  for (size_t i = 0; i < in.NumRows(); ++i) {
    std::string key;
    for (size_t c = 0; c < in.NumColumns(); ++c) {
      key += in.At(i, static_cast<int>(c)).Key();
      key += '\x1f';
    }
    if (seen.insert(std::move(key)).second) idx.push_back(i);
  }
  return in.GatherRows(idx);
}

StatusOr<Table> DisjointUnion(const Table& a, const Table& b) {
  if (a.NumColumns() != b.NumColumns()) {
    return Status::Internal("disjoint union: schema mismatch");
  }
  Table out(a.column_names());
  out.AppendRowsFrom(a);
  out.AppendRowsFrom(b);
  return out;
}

StatusOr<Table> EquiJoin(const Table& a, const Table& b,
                         const std::string& col_a, const std::string& col_b) {
  int ca = a.ColumnIndex(col_a);
  int cb = b.ColumnIndex(col_b);
  if (ca < 0 || cb < 0) {
    return Status::Internal("join: missing column " + col_a + "/" + col_b);
  }
  std::vector<std::string> names = a.column_names();
  std::vector<int> b_cols;
  for (size_t i = 0; i < b.NumColumns(); ++i) {
    if (static_cast<int>(i) == cb) continue;
    std::string name = b.column_names()[i];
    while (std::find(names.begin(), names.end(), name) != names.end()) {
      name += "'";
    }
    names.push_back(name);
    b_cols.push_back(static_cast<int>(i));
  }
  // Hash join: build on b's key column, probe a's, collect the matching
  // (a_row, b_row) index pairs, then gather each side column-at-a-time.
  std::multimap<std::string, size_t> build;
  for (size_t i = 0; i < b.NumRows(); ++i) {
    build.emplace(b.At(i, cb).Key(), i);
  }
  std::vector<size_t> a_idx;
  std::vector<size_t> b_idx;
  for (size_t i = 0; i < a.NumRows(); ++i) {
    auto [lo, hi] = build.equal_range(a.At(i, ca).Key());
    for (auto it = lo; it != hi; ++it) {
      a_idx.push_back(i);
      b_idx.push_back(it->second);
    }
  }
  Table out(std::move(names));
  out.Reserve(a_idx.size());
  std::vector<Cell> row(a.NumColumns() + b_cols.size());
  for (size_t k = 0; k < a_idx.size(); ++k) {
    size_t w = 0;
    for (size_t c = 0; c < a.NumColumns(); ++c) {
      row[w++] = a.At(a_idx[k], static_cast<int>(c));
    }
    for (int c : b_cols) row[w++] = b.At(b_idx[k], c);
    out.AppendRow(row);
  }
  return out;
}

StatusOr<Table> RowNumber(const Table& in, const std::string& new_column,
                          const std::vector<std::string>& order_columns,
                          const std::string& partition_column) {
  std::vector<int> order;
  for (const std::string& c : order_columns) {
    int idx = in.ColumnIndex(c);
    if (idx < 0) return Status::Internal("rownum: no column " + c);
    order.push_back(idx);
  }
  int part = -1;
  if (!partition_column.empty()) {
    part = in.ColumnIndex(partition_column);
    if (part < 0) {
      return Status::Internal("rownum: no column " + partition_column);
    }
  }
  // Stable sort of row indices by (partition, order columns).
  std::vector<size_t> idx(in.NumRows());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  auto cell_less = [](const Cell& x, const Cell& y) {
    if (x.kind == Cell::Kind::kInt && y.kind == Cell::Kind::kInt) {
      return x.num < y.num;
    }
    return x.Key() < y.Key();
  };
  std::stable_sort(idx.begin(), idx.end(), [&](size_t x, size_t y) {
    if (part >= 0) {
      const Cell& px = in.At(x, part);
      const Cell& py = in.At(y, part);
      if (!CellEquals(px, py)) return cell_less(px, py);
    }
    for (int c : order) {
      const Cell& cx = in.At(x, c);
      const Cell& cy = in.At(y, c);
      if (!CellEquals(cx, cy)) return cell_less(cx, cy);
    }
    return false;
  });
  std::vector<std::string> names = in.column_names();
  names.push_back(new_column);
  Table out(std::move(names));
  // Assign ranks in sorted order, then restore original row order.
  std::vector<int64_t> ranks(in.NumRows(), 0);
  int64_t rank = 0;
  for (size_t k = 0; k < idx.size(); ++k) {
    bool new_partition =
        k == 0 || (part >= 0 && !CellEquals(in.At(idx[k], part),
                                            in.At(idx[k - 1], part)));
    rank = new_partition ? 1 : rank + 1;
    ranks[idx[k]] = rank;
  }
  out.Reserve(in.NumRows());
  for (size_t i = 0; i < in.NumRows(); ++i) {
    std::vector<Cell> row = in.Row(i);
    row.push_back(Cell::Int(ranks[i]));
    out.AppendRow(std::move(row));
  }
  return out;
}

Table LiteralTable(std::vector<std::string> names,
                   std::vector<std::vector<Cell>> rows) {
  Table out(std::move(names));
  for (auto& row : rows) out.AppendRow(std::move(row));
  return out;
}

StatusOr<Table> SortBy(const Table& in,
                       const std::vector<std::string>& columns) {
  std::vector<int> cols;
  for (const std::string& c : columns) {
    int idx = in.ColumnIndex(c);
    if (idx < 0) return Status::Internal("sort: no column " + c);
    cols.push_back(idx);
  }
  // Loop-lifted intermediates are usually already (iter, pos)-sorted; one
  // branch-light scan over the key columns detects that and skips the
  // argsort + gather entirely.
  auto row_less = [&](size_t x, size_t y) {
    for (int c : cols) {
      int64_t vx = in.At(x, c).num;
      int64_t vy = in.At(y, c).num;
      if (vx != vy) return vx < vy;
    }
    return false;
  };
  bool sorted = true;
  for (size_t i = 1; i < in.NumRows(); ++i) {
    if (row_less(i, i - 1)) {
      sorted = false;
      break;
    }
  }
  if (sorted) return in;
  std::vector<size_t> idx(in.NumRows());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), row_less);
  return in.GatherRows(idx);
}

Table ScatterGatherMerge(const std::vector<Table>& sources) {
  // Tag every row with its source rank, stable-sort by (iter, rank, pos),
  // then renumber pos densely per iteration. Stability keeps equal keys in
  // append order, so a source whose rows are already grouped per call
  // keeps each call's sequence order intact.
  struct TaggedRow {
    int64_t iter;
    int64_t rank;
    int64_t pos;
    size_t source;
    size_t row;
  };
  std::vector<TaggedRow> rows;
  for (size_t s = 0; s < sources.size(); ++s) {
    const Table& t = sources[s];
    for (size_t i = 0; i < t.NumRows(); ++i) {
      rows.push_back({t.Iter(i), static_cast<int64_t>(s), t.Pos(i), s, i});
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const TaggedRow& a, const TaggedRow& b) {
                     if (a.iter != b.iter) return a.iter < b.iter;
                     if (a.rank != b.rank) return a.rank < b.rank;
                     return a.pos < b.pos;
                   });
  Table out = Table::IterPosItem();
  out.Reserve(rows.size());
  int64_t current_iter = 0;
  int64_t next_pos = 1;
  bool have_iter = false;
  for (const TaggedRow& r : rows) {
    if (!have_iter || r.iter != current_iter) {
      current_iter = r.iter;
      next_pos = 1;
      have_iter = true;
    }
    out.AppendIPI(r.iter, next_pos++, sources[r.source].ItemAt(r.row));
  }
  return out;
}

}  // namespace xrpc::algebra
