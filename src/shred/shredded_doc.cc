#include "shred/shredded_doc.h"

namespace xrpc::shred {

std::shared_ptr<ShreddedDoc> ShreddedDoc::Shred(xml::NodePtr doc) {
  std::shared_ptr<ShreddedDoc> shredded(new ShreddedDoc());
  shredded->anchor_ = doc;
  shredded->ShredNode(doc.get(), 0, -1);
  return shredded;
}

void ShreddedDoc::ShredNode(xml::Node* node, int32_t level, int32_t parent) {
  int32_t pre = static_cast<int32_t>(rows_.size());
  NodeRow row;
  row.pre = pre;
  row.level = level;
  row.parent = parent;
  row.kind = node->kind();
  row.dom = node;
  if (node->kind() == xml::NodeKind::kElement ||
      node->kind() == xml::NodeKind::kAttribute ||
      node->kind() == xml::NodeKind::kProcessingInstruction) {
    std::string key = node->name().Clark();
    auto it = name_ids_.find(key);
    if (it == name_ids_.end()) {
      row.name_id = static_cast<int32_t>(names_.size());
      names_.push_back(node->name());
      name_ids_[key] = row.name_id;
    } else {
      row.name_id = it->second;
    }
  }
  rows_.push_back(row);
  pre_of_[node] = pre;

  if (!node->attributes().empty()) {
    std::vector<xml::Node*>& attrs = attrs_[pre];
    for (const xml::NodePtr& a : node->attributes()) {
      attrs.push_back(a.get());
      // Attribute names participate in the dictionary too.
      std::string key = a->name().Clark();
      if (name_ids_.find(key) == name_ids_.end()) {
        name_ids_[key] = static_cast<int32_t>(names_.size());
        names_.push_back(a->name());
      }
    }
  }

  for (const xml::NodePtr& c : node->children()) {
    ShredNode(c.get(), level + 1, pre);
  }
  rows_[pre].size = static_cast<int32_t>(rows_.size()) - pre - 1;
}

int32_t ShreddedDoc::NameId(const xml::QName& name) const {
  auto it = name_ids_.find(name.Clark());
  return it == name_ids_.end() ? -1 : it->second;
}

std::vector<int32_t> ShreddedDoc::DescendantElements(int32_t pre,
                                                     int32_t name_id) const {
  std::vector<int32_t> out;
  const NodeRow& v = rows_[pre];
  for (int32_t i = pre + 1; i <= pre + v.size; ++i) {
    const NodeRow& r = rows_[i];
    if (r.kind != xml::NodeKind::kElement) continue;
    if (name_id >= 0 && r.name_id != name_id) continue;
    out.push_back(i);
  }
  return out;
}

std::vector<int32_t> ShreddedDoc::ChildElements(int32_t pre,
                                                int32_t name_id) const {
  std::vector<int32_t> out;
  const NodeRow& v = rows_[pre];
  int32_t i = pre + 1;
  int32_t end = pre + v.size;
  while (i <= end) {
    const NodeRow& r = rows_[i];
    if (r.kind == xml::NodeKind::kElement &&
        (name_id < 0 || r.name_id == name_id)) {
      out.push_back(i);
    }
    i += r.size + 1;  // staircase skip: jump over the child's subtree
  }
  return out;
}

std::vector<xml::Node*> ShreddedDoc::Attributes(int32_t pre,
                                                int32_t name_id) const {
  std::vector<xml::Node*> out;
  auto it = attrs_.find(pre);
  if (it == attrs_.end()) return out;
  for (xml::Node* a : it->second) {
    if (name_id >= 0) {
      auto id = name_ids_.find(a->name().Clark());
      if (id == name_ids_.end() || id->second != name_id) continue;
    }
    out.push_back(a);
  }
  return out;
}

std::string ShreddedDoc::StringValue(int32_t pre) const {
  const NodeRow& v = rows_[pre];
  if (v.kind == xml::NodeKind::kText) return v.dom->value();
  std::string out;
  for (int32_t i = pre + 1; i <= pre + v.size; ++i) {
    if (rows_[i].kind == xml::NodeKind::kText) out += rows_[i].dom->value();
  }
  return out;
}

int32_t ShreddedDoc::PreOf(const xml::Node* node) const {
  auto it = pre_of_.find(node);
  return it == pre_of_.end() ? -1 : it->second;
}

std::shared_ptr<ShreddedDoc> ShredCache::GetOrShred(const xml::NodePtr& doc) {
  // One lock over lookup AND shred: concurrent workers missing on the
  // same document wait for the first shred instead of duplicating it.
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t stamp = doc->Root()->mutation_stamp();
  auto it = cache_.find(doc.get());
  if (it != cache_.end() && it->second.stamp == stamp) return it->second.doc;
  auto shredded = ShreddedDoc::Shred(doc);
  cache_[doc.get()] = {doc->Root()->mutation_stamp(), shredded};
  return shredded;
}

}  // namespace xrpc::shred
