#ifndef XRPC_SHRED_SHREDDED_DOC_H_
#define XRPC_SHRED_SHREDDED_DOC_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "xml/node.h"

namespace xrpc::shred {

/// A document shredded into the pre/size/level encoding MonetDB/XQuery
/// uses: nodes in document order (pre), with subtree size and tree depth.
///
/// With this encoding the XPath axes become range scans:
///   descendants(v)  = (v.pre, v.pre + v.size]
///   children(v)     = descendants at level v.level + 1 (skippable in one
///                     pass by jumping over grandchild subtrees)
///   parent(v)       = nearest preceding node with smaller level
/// — the essence of the staircase join.
///
/// Every shredded node keeps a pointer to its DOM node so results can flow
/// back into the XDM layer without re-materialization.
class ShreddedDoc {
 public:
  struct NodeRow {
    int32_t pre = 0;
    int32_t size = 0;   ///< number of descendants
    int32_t level = 0;
    int32_t parent = -1;
    xml::NodeKind kind = xml::NodeKind::kElement;
    int32_t name_id = -1;  ///< into names() for elements/attributes/PIs
    xml::Node* dom = nullptr;
  };

  /// Shreds `doc` (which must outlive the ShreddedDoc; the anchor keeps
  /// it alive). Attributes are stored in a side table per element.
  static std::shared_ptr<ShreddedDoc> Shred(xml::NodePtr doc);

  size_t NumNodes() const { return rows_.size(); }
  const NodeRow& Row(int32_t pre) const { return rows_[pre]; }
  const xml::NodePtr& anchor() const { return anchor_; }

  /// Name dictionary.
  const std::vector<xml::QName>& names() const { return names_; }
  /// Id of a name, or -1 if the name never occurs.
  int32_t NameId(const xml::QName& name) const;

  /// Descendant scan: all pre values in (pre, pre+size] whose name matches
  /// `name_id` (-1 = any element). Elements only.
  std::vector<int32_t> DescendantElements(int32_t pre, int32_t name_id) const;

  /// Child scan at level+1.
  std::vector<int32_t> ChildElements(int32_t pre, int32_t name_id) const;

  /// Attribute access (side table): matching attribute DOM nodes.
  std::vector<xml::Node*> Attributes(int32_t pre, int32_t name_id) const;

  /// String value of a subtree: concatenated text descendants.
  std::string StringValue(int32_t pre) const;

  /// The pre number of a DOM node in this document, or -1.
  int32_t PreOf(const xml::Node* node) const;

 private:
  ShreddedDoc() = default;
  void ShredNode(xml::Node* node, int32_t level, int32_t parent);

  xml::NodePtr anchor_;
  std::vector<NodeRow> rows_;
  std::vector<xml::QName> names_;
  std::map<std::string, int32_t> name_ids_;
  std::map<const xml::Node*, int32_t> pre_of_;
  /// attrs_[pre] = attribute DOM nodes of that element.
  std::map<int32_t, std::vector<xml::Node*>> attrs_;
};

/// Caches shredded documents keyed by DOM root pointer, so repeated
/// queries against the same version of a document shred once. Entries are
/// invalidated when the tree's mutation stamp changes (XQUF updates mutate
/// trees in place).
/// Thread-safe: morsel workers shred and look up concurrently (a shredded
/// doc itself is immutable after Shred()).
class ShredCache {
 public:
  std::shared_ptr<ShreddedDoc> GetOrShred(const xml::NodePtr& doc);
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
  }

 private:
  struct Entry {
    uint64_t stamp = 0;
    std::shared_ptr<ShreddedDoc> doc;
  };
  mutable std::mutex mu_;
  std::map<const xml::Node*, Entry> cache_;
};

}  // namespace xrpc::shred

#endif  // XRPC_SHRED_SHREDDED_DOC_H_
