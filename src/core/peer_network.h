#ifndef XRPC_CORE_PEER_NETWORK_H_
#define XRPC_CORE_PEER_NETWORK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/cancellation.h"
#include "base/statusor.h"
#include "compiler/relational_engine.h"
#include "core/catalog.h"
#include "net/circuit_breaker.h"
#include "net/retrying_transport.h"
#include "net/rpc_metrics.h"
#include "net/simulated_network.h"
#include "net/thread_pool.h"
#include "server/remote_docs.h"
#include "server/rpc_client.h"
#include "server/xrpc_service.h"
#include "wrapper/wrapper_engine.h"

namespace xrpc::core {

/// Namespace of the built-in system module every peer serves (remote
/// document fetch); see server/remote_docs.h.
using server::kSystemModuleNs;

/// Which XQuery engine a peer runs.
enum class EngineKind {
  kRelational,         ///< loop-lifted relational plans + function cache
                       ///< (the MonetDB/XQuery role)
  kRelationalNoCache,  ///< same, recompiling every request (Table 2)
  kInterpreter,        ///< direct tree-walking interpretation
  kInterpreterNoCache, ///< interpretation with per-request module reparse
  kWrapper,            ///< XRPC wrapper over the interpreter (the Saxon
                       ///< role, Section 4)
};

const char* EngineKindToString(EngineKind kind);

/// One XQuery peer: database + module registry + execution engine + XRPC
/// service, addressable as xrpc://<name> on the owning PeerNetwork.
class Peer {
 public:
  Peer(std::string name, EngineKind kind, net::SimulatedNetwork* network,
       const Catalog* catalog = nullptr);

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  /// Stores a document (parsed from text) in this peer's database.
  Status AddDocument(const std::string& doc_name, std::string_view xml_text);
  Status AddDocumentNode(const std::string& doc_name, xml::NodePtr doc);

  /// Registers an XQuery module this peer can execute XRPC calls against.
  Status RegisterModule(std::string_view source, const std::string& location = "");

  const std::string& name() const { return name_; }
  const std::string& uri() const { return uri_; }
  EngineKind engine_kind() const { return kind_; }

  server::Database& database() { return db_; }
  server::ModuleRegistry& registry() { return registry_; }
  server::XrpcService& service() { return *service_; }

  /// Switches this peer's transaction log to a durable WAL file.
  Status EnableWal(const std::string& path) {
    return service_->EnableWal(path);
  }

  /// Crash-harness shorthands (see XrpcService).
  void InjectCrash(server::CrashPoint point) { service_->InjectCrash(point); }
  bool crashed() const { return service_->crashed(); }

  /// Restarts the peer after a (simulated) crash: replays the WAL and —
  /// because the owning network's transport is passed along — resolves
  /// in-doubt transactions by coordinator inquiry / commit retry.
  Status Restart() { return service_->Restart(network_); }

  /// Membership chaos (DESIGN.md §14): detaches this peer from the
  /// simulated network — subsequent dials to it fail with the same
  /// kNetworkError a connection refusal produces — and re-attaches it.
  /// Unlike InjectCrash, the peer's state (database, sessions, WAL) is
  /// untouched: this models a partition or process pause, not a crash.
  void Disconnect();
  void Reconnect();

  /// Anti-entropy catch-up (DESIGN.md §17): resolves in-doubt transactions
  /// by coordinator inquiry, then resyncs every locally held fragment whose
  /// applied data version lags the catalog's authoritative one from a peer
  /// copy. Call after Reconnect() when writes may have committed during the
  /// partition (Restart() runs it automatically).
  Status Repair() { return service_->RepairReplica(network_); }

  /// Engine-specific handles (null when the peer runs another engine).
  compiler::RelationalEngine* relational_engine() { return relational_.get(); }
  wrapper::WrapperEngine* wrapper_engine() { return wrapper_.get(); }

 private:
  friend class PeerNetwork;

  std::string name_;
  std::string uri_;
  EngineKind kind_;
  net::SimulatedNetwork* network_;
  server::Database db_;
  server::ModuleRegistry registry_;
  std::unique_ptr<compiler::RelationalEngine> relational_;
  std::unique_ptr<wrapper::WrapperEngine> wrapper_;
  std::unique_ptr<server::InterpreterEngine> interpreter_;
  std::unique_ptr<server::XrpcService> service_;
};

/// Options controlling query execution at the originating peer.
struct ExecuteOptions {
  /// Capture the Figure-1 intermediate tables of every Bulk RPC.
  bool trace_bulk_rpc = false;
  /// Disable loop-lifted Bulk RPC at p0 and issue one request per
  /// `execute at` evaluation (the "one-at-a-time" comparison mechanism of
  /// Table 2).
  bool force_one_at_a_time = false;

  /// Ablation toggles for the engine optimizations (bench_ablation).
  bool disable_hoisting = false;
  bool disable_join_rewrite = false;

  /// End-to-end time budget (virtual-clock micros) of the whole query,
  /// including every relocation hop; 0 = none. A query may instead (or
  /// additionally) carry `declare option xrpc:deadline "<micros>"` — when
  /// both are set, this field wins.
  int64_t deadline_us = 0;

  /// Per-query override of the morsel-executor worker count at p0
  /// (DESIGN.md §15). 0 = the network-wide setting (EnableParallelExec);
  /// 1 = force serial; N > 1 = parallel on N workers. Output is
  /// byte-identical at every value.
  int exec_threads = 0;
};

/// Everything measured about one query execution.
struct ExecutionReport {
  xdm::Sequence result;

  /// Updating queries under repeatable isolation: distributed 2PC outcome.
  bool committed = true;
  std::string abort_reason;
  int commit_retries = 0;  ///< phase-2 Commit retransmissions
  /// Participants whose Commit ack never arrived; the decision is durable
  /// on the coordinator and they are drained later (Peer::Restart /
  /// XrpcService::RetryInDoubt).
  std::vector<std::string> in_doubt;

  int64_t requests_sent = 0;
  int64_t network_micros = 0;  ///< modeled wire time (critical path)
  int64_t wall_micros = 0;     ///< measured processing time at p0
                               ///< (includes synchronous remote handling)
  int64_t remote_micros = 0;   ///< measured processing time at remote peers
  std::set<std::string> participants;

  bool used_relational = false;  ///< p0 ran the loop-lifted engine
  bool fell_back = false;        ///< relational p0 fell back to interpreter
  std::vector<compiler::BulkRpcTrace> traces;
};

/// A network of XQuery peers connected by the simulated transport — the
/// top-level handle of the library. Typical use:
///
///   PeerNetwork net;
///   Peer* x = net.AddPeer("x.example.org");
///   x->AddDocument("filmDB.xml", ...);
///   x->RegisterModule(film_module);
///   auto report = net.Execute("p0", query_with_execute_at);
class PeerNetwork {
 public:
  explicit PeerNetwork(net::NetworkProfile profile = {});

  PeerNetwork(const PeerNetwork&) = delete;
  PeerNetwork& operator=(const PeerNetwork&) = delete;

  /// Creates a peer reachable at xrpc://<name>.
  Peer* AddPeer(const std::string& name,
                EngineKind kind = EngineKind::kRelational);
  Peer* GetPeer(const std::string& name);

  net::SimulatedNetwork& network() { return network_; }

  /// The network-wide peer catalog (DESIGN.md §13). Every peer's service
  /// and every Execute() consult it; register sharded collections here
  /// (typically via xmark::LoadShardedXmark) before running queries.
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Shared observability registry: client-side traffic (per-peer requests,
  /// retries, faults, bytes, latency histogram), server-side request counts
  /// and injected faults all land here. Dumped by the bench harness.
  net::RpcMetrics& metrics() { return metrics_; }

  /// Retry/timeout policy applied to every outgoing request of Execute().
  /// Default: one attempt (no retries), preserving fail-fast semantics.
  /// Backoff waits advance the simulated network's virtual clock, keeping
  /// executions deterministic.
  void set_retry_policy(net::RetryPolicy policy) {
    transport_.set_policy(policy);
  }
  const net::RetryPolicy& retry_policy() const { return transport_.policy(); }

  /// Attaches a per-peer circuit breaker (aged on the virtual clock) to
  /// the outgoing transport: after `failure_threshold` consecutive
  /// failures/timeouts toward one destination, further requests to it are
  /// short-circuited locally until the cooldown admits a probe. Opt-in —
  /// without this call, behavior is unchanged. Call before Execute().
  void EnableCircuitBreaker(net::CircuitBreaker::Policy policy = {});
  net::CircuitBreaker* circuit_breaker() { return breaker_.get(); }

  /// Switches multi-destination Bulk RPC dispatch from the (deterministic)
  /// serial default to genuinely parallel dispatch on a pool of `threads`
  /// workers. Modeled network time is max-over-destinations either way;
  /// what changes is wall-clock concurrency — and, under an active fault
  /// profile, the order in which concurrent requests consume the injected
  /// fault schedule (no longer deterministic). Call before Execute().
  void EnableParallelDispatch(int threads = 4);
  bool parallel_dispatch_enabled() const { return dispatch_pool_ != nullptr; }

  /// Switches the loop-lifted evaluators (p0 query evaluation AND every
  /// relational peer's request engine) to morsel-parallel execution on
  /// `threads` workers (DESIGN.md §15). Output stays byte-identical to
  /// serial execution — the deterministic merge re-sorts by (iter, pos) —
  /// so unlike EnableParallelDispatch this is safe under fault schedules.
  /// Applies to existing and future peers; call before Execute().
  void EnableParallelExec(int threads = 4);
  int exec_threads() const { return exec_threads_; }

  /// Runs `query_text` with peer `peer_name` in the p0 role: parses it,
  /// honors its declare option xrpc:isolation / xrpc:timeout, executes it
  /// on the peer's engine with loop-lifted Bulk RPC dispatch (relational
  /// peers), and — for updating queries under repeatable isolation —
  /// coordinates the WS-AT two-phase commit across all participants.
  StatusOr<ExecutionReport> Execute(const std::string& peer_name,
                                    const std::string& query_text,
                                    const ExecuteOptions& options = {});

 private:
  net::SimulatedNetwork network_;
  Catalog catalog_;
  net::RpcMetrics metrics_;
  net::RetryingTransport transport_;  ///< retry/timeout decorator over network_
  std::unique_ptr<net::CircuitBreaker> breaker_;    ///< null = disabled
  std::unique_ptr<net::ThreadPool> dispatch_pool_;  ///< null = serial dispatch
  std::unique_ptr<net::ThreadPool> exec_pool_;      ///< null = serial exec
  int exec_threads_ = 1;  ///< network-wide morsel-executor worker count
  std::map<std::string, std::unique_ptr<Peer>> peers_;
  int64_t next_query_serial_ = 1;
};

}  // namespace xrpc::core

#endif  // XRPC_CORE_PEER_NETWORK_H_
