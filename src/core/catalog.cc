#include "core/catalog.h"

#include <cstdio>

namespace xrpc::core {

namespace {

constexpr std::string_view kShardScheme = "shard:";

/// Parses the trailing decimal integer of a key ("person42" -> 42,
/// "42" -> 42). Returns false when the key has no trailing digits.
bool TrailingInteger(std::string_view key, int64_t* out) {
  size_t end = key.size();
  size_t begin = end;
  while (begin > 0 && key[begin - 1] >= '0' && key[begin - 1] <= '9') --begin;
  if (begin == end) return false;
  // Bound the digit run so a pathological key cannot overflow.
  if (end - begin > 18) begin = end - 18;
  int64_t v = 0;
  for (size_t i = begin; i < end; ++i) v = v * 10 + (key[i] - '0');
  *out = v;
  return true;
}

}  // namespace

uint64_t ShardHash(std::string_view key) {
  // FNV-1a, 64-bit: stable across platforms, good dispersion on the short
  // "personN" / "itemN" keys the XMark loader partitions on.
  uint64_t h = 14695981039346656037ull;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Status Catalog::RegisterCollection(ShardedCollection collection) {
  if (collection.name.empty()) {
    return Status::InvalidArgument("sharded collection needs a name");
  }
  if (collection.shards.empty()) {
    return Status::InvalidArgument("sharded collection " + collection.name +
                                   " has no shards");
  }
  for (size_t i = 0; i < collection.shards.size(); ++i) {
    const ShardInfo& s = collection.shards[i];
    if (s.index != static_cast<int>(i)) {
      return Status::InvalidArgument(
          "shard indices of " + collection.name +
          " must be dense 0..n-1, shard " + std::to_string(i) + " has index " +
          std::to_string(s.index));
    }
    if (s.peer_uri.empty() || s.doc_name.empty()) {
      return Status::InvalidArgument("shard " + std::to_string(i) + " of " +
                                     collection.name +
                                     " lacks a peer URI or fragment name");
    }
    for (const std::string& replica : s.replicas) {
      if (replica.empty()) {
        return Status::InvalidArgument("shard " + std::to_string(i) + " of " +
                                       collection.name +
                                       " lists an empty replica URI");
      }
      if (replica == s.peer_uri) {
        return Status::InvalidArgument(
            "shard " + std::to_string(i) + " of " + collection.name +
            " lists its primary " + replica + " as a replica");
      }
    }
    if (collection.kind == PartitionKind::kRange) {
      if (s.hi <= s.lo) {
        return Status::InvalidArgument("empty key range on shard " +
                                       std::to_string(i) + " of " +
                                       collection.name);
      }
      if (i > 0 && s.lo < collection.shards[i - 1].hi) {
        return Status::InvalidArgument(
            "overlapping key ranges on collection " + collection.name);
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  collections_[collection.name] = std::move(collection);
  ++version_;
  return Status::OK();
}

const ShardedCollection* Catalog::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : &it->second;
}

bool Catalog::Snapshot(std::string_view name, ShardedCollection* out,
                       int64_t* version_out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (version_out != nullptr) *version_out = version_;
  auto it = collections_.find(name);
  if (it == collections_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

StatusOr<int> Catalog::RouteKey(const ShardedCollection& collection,
                                std::string_view key) const {
  if (collection.shards.empty()) {
    return Status::Internal("collection " + collection.name + " has no shards");
  }
  if (collection.kind == PartitionKind::kHash) {
    return static_cast<int>(ShardHash(key) % collection.shards.size());
  }
  int64_t v = 0;
  if (!TrailingInteger(key, &v)) {
    ReportRouteMiss(collection.name, "key '" + std::string(key) +
                                         "' has no trailing integer");
    return Status::InvalidArgument("range-partitioned " + collection.name +
                                   ": key '" + std::string(key) +
                                   "' has no trailing integer");
  }
  for (const ShardInfo& s : collection.shards) {
    if (v >= s.lo && v < s.hi) return s.index;
  }
  ReportRouteMiss(collection.name,
                  "key '" + std::string(key) + "' outside every range");
  return Status::InvalidArgument("key '" + std::string(key) +
                                 "' outside every range of " +
                                 collection.name);
}

void Catalog::set_route_miss_listener(RouteMissListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  route_miss_listener_ = std::move(listener);
}

void Catalog::ReportRouteMiss(const std::string& collection,
                              const std::string& why) const {
  RouteMissListener listener;
  bool log_first = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    listener = route_miss_listener_;
    log_first = miss_logged_.insert(collection).second;
  }
  if (log_first) {
    std::fprintf(stderr,
                 "xrpc: catalog route miss on collection %s (%s); "
                 "broadcasting to every shard\n",
                 collection.c_str(), why.c_str());
  }
  if (listener) listener(collection);
}

int64_t Catalog::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

namespace {
std::string FragmentKey(std::string_view collection, int shard_index) {
  return std::string(collection) + "#" + std::to_string(shard_index);
}
}  // namespace

uint64_t Catalog::FragmentDataVersion(std::string_view collection,
                                      int shard_index) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fragment_versions_.find(FragmentKey(collection, shard_index));
  return it == fragment_versions_.end() ? 0 : it->second;
}

void Catalog::AdvanceFragmentDataVersion(std::string_view collection,
                                         int shard_index, uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t& v = fragment_versions_[FragmentKey(collection, shard_index)];
  if (version > v) v = version;
}

std::vector<std::pair<int, uint64_t>> Catalog::FragmentDataVersions(
    std::string_view collection) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<int, uint64_t>> out;
  auto it = collections_.find(collection);
  if (it == collections_.end()) return out;
  for (const ShardInfo& s : it->second.shards) {
    auto fv = fragment_versions_.find(FragmentKey(collection, s.index));
    if (fv != fragment_versions_.end() && fv->second > 0) {
      out.emplace_back(s.index, fv->second);
    }
  }
  return out;
}

std::vector<std::string> Catalog::CollectionNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, c] : collections_) names.push_back(name);
  return names;
}

bool Catalog::IsShardUri(std::string_view uri) {
  return uri.size() > kShardScheme.size() &&
         uri.substr(0, kShardScheme.size()) == kShardScheme;
}

std::string_view Catalog::CollectionOf(std::string_view uri) {
  if (!IsShardUri(uri)) return {};
  return uri.substr(kShardScheme.size());
}

std::string Catalog::ShardUri(std::string_view collection) {
  return std::string(kShardScheme) + std::string(collection);
}

}  // namespace xrpc::core
