#ifndef XRPC_CORE_CATALOG_H_
#define XRPC_CORE_CATALOG_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"

namespace xrpc::core {

/// How a sharded collection partitions its elements over shards.
enum class PartitionKind {
  kHash,   ///< shard = ShardHash(key) % num_shards
  kRange,  ///< shard owning the half-open numeric range [lo, hi) that
           ///< contains the key's trailing integer (e.g. "person42" -> 42)
};

/// One shard of a collection: which peer owns it and under which physical
/// fragment name the peer's database stores it.
struct ShardInfo {
  int index = 0;          ///< 0-based shard number (merge rank)
  std::string peer_uri;   ///< owning peer, e.g. "xrpc://shard3"
  std::string doc_name;   ///< fragment name at that peer, e.g. "auctions.xml#3"
  int64_t lo = 0;         ///< kRange only: inclusive lower key bound
  int64_t hi = 0;         ///< kRange only: exclusive upper key bound
};

/// The shard map of one logical collection (DESIGN.md §13): a document
/// name addressable as doc("shard:<name>") or `execute at
/// {"shard:<name>"}`, physically split over the shards below.
struct ShardedCollection {
  std::string name;        ///< logical document name, e.g. "auctions.xml"
  PartitionKind kind = PartitionKind::kHash;
  /// Human-readable partition key description ("buyer/@person"); the
  /// routable form is `route_param` below.
  std::string partition_key;
  /// Index of the argument that carries the partition key when a call is
  /// routed at this collection (`execute at {"shard:<name>"} {f($key,...)}`);
  /// -1 = no routable parameter, every call broadcasts to all shards.
  int route_param = -1;
  std::vector<ShardInfo> shards;
};

/// Stable FNV-1a hash of a partition-key string. The sharded XMark loader
/// and the query-time router MUST agree on this function — both sides use
/// this one.
uint64_t ShardHash(std::string_view key);

/// The peer catalog: a versioned registry of sharded collections, shared
/// by every peer of a simulated network (standing in for the gossiped /
/// replicated catalog service of a real deployment). Query compilation
/// (`execute at` decomposition), fn:doc resolution, and the XRPC service's
/// local fragment lookup all consult it.
///
/// Thread-safety: registration must complete before queries run;
/// concurrent Find() during execution is safe (the map is only read), but
/// re-registering a collection while queries are in flight is undefined.
class Catalog {
 public:
  /// Registers (or replaces) a collection's shard map and bumps the
  /// catalog version. Validates that the shard list is non-empty, indices
  /// are dense 0..n-1, and range bounds cover disjoint ascending ranges.
  Status RegisterCollection(ShardedCollection collection);

  /// Looks up a collection by logical name; nullptr if unknown. The
  /// pointer stays valid for the catalog's lifetime (map nodes are stable).
  const ShardedCollection* Find(std::string_view name) const;

  /// Routes a partition-key value to the index of its owning shard.
  /// kHash: ShardHash(key) modulo shard count. kRange: the shard whose
  /// [lo, hi) contains the key's trailing integer; a key without a
  /// trailing integer or outside every range is an error (callers treat a
  /// routing error as "cannot prune" and broadcast instead).
  StatusOr<int> RouteKey(const ShardedCollection& collection,
                         std::string_view key) const;

  /// Monotonic registration counter (0 = empty catalog).
  int64_t version() const;

  std::vector<std::string> CollectionNames() const;

  /// True for logical shard destinations: "shard:<collection>".
  static bool IsShardUri(std::string_view uri);
  /// The collection name of a shard URI ("" when not a shard URI).
  static std::string_view CollectionOf(std::string_view uri);
  /// Renders the logical destination of a collection name.
  static std::string ShardUri(std::string_view collection);

 private:
  mutable std::mutex mu_;
  std::map<std::string, ShardedCollection, std::less<>> collections_;
  int64_t version_ = 0;
};

}  // namespace xrpc::core

#endif  // XRPC_CORE_CATALOG_H_
