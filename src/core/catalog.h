#ifndef XRPC_CORE_CATALOG_H_
#define XRPC_CORE_CATALOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"

namespace xrpc::core {

/// How a sharded collection partitions its elements over shards.
enum class PartitionKind {
  kHash,   ///< shard = ShardHash(key) % num_shards
  kRange,  ///< shard owning the half-open numeric range [lo, hi) that
           ///< contains the key's trailing integer (e.g. "person42" -> 42)
};

/// One shard of a collection: which peer owns it and under which physical
/// fragment name the peer's database stores it.
struct ShardInfo {
  int index = 0;          ///< 0-based shard number (merge rank)
  std::string peer_uri;   ///< primary peer, e.g. "xrpc://shard3"
  std::string doc_name;   ///< fragment name at that peer, e.g. "auctions.xml#3"
  int64_t lo = 0;         ///< kRange only: inclusive lower key bound
  int64_t hi = 0;         ///< kRange only: exclusive upper key bound
  /// Replica peers holding the same fragment under the same doc_name.
  /// Read-only subcalls may fail over primary -> replicas[0] -> ... within
  /// the deadline budget; updating calls only ever go to the primary.
  std::vector<std::string> replicas;
};

/// The shard map of one logical collection (DESIGN.md §13): a document
/// name addressable as doc("shard:<name>") or `execute at
/// {"shard:<name>"}`, physically split over the shards below.
struct ShardedCollection {
  std::string name;        ///< logical document name, e.g. "auctions.xml"
  PartitionKind kind = PartitionKind::kHash;
  /// Human-readable partition key description ("buyer/@person"); the
  /// routable form is `route_param` below.
  std::string partition_key;
  /// Index of the argument that carries the partition key when a call is
  /// routed at this collection (`execute at {"shard:<name>"} {f($key,...)}`);
  /// -1 = no routable parameter, every call broadcasts to all shards.
  int route_param = -1;
  std::vector<ShardInfo> shards;
};

/// Stable FNV-1a hash of a partition-key string. The sharded XMark loader
/// and the query-time router MUST agree on this function — both sides use
/// this one.
uint64_t ShardHash(std::string_view key);

/// The peer catalog: a versioned registry of sharded collections, shared
/// by every peer of a simulated network (standing in for the gossiped /
/// replicated catalog service of a real deployment). Query compilation
/// (`execute at` decomposition), fn:doc resolution, and the XRPC service's
/// local fragment lookup all consult it.
///
/// Thread-safety: all entry points lock. Find() returns a stable map-node
/// pointer but a concurrent re-registration overwrites the value it points
/// at — decomposition sites that must tolerate mid-flight catalog churn
/// (the epoch-fencing re-route of DESIGN.md §14) use Snapshot() instead,
/// which copies the shard map and its version atomically.
class Catalog {
 public:
  /// Registers (or replaces) a collection's shard map and bumps the
  /// catalog version. Validates that the shard list is non-empty, indices
  /// are dense 0..n-1, and range bounds cover disjoint ascending ranges.
  Status RegisterCollection(ShardedCollection collection);

  /// Looks up a collection by logical name; nullptr if unknown. The
  /// pointer stays valid for the catalog's lifetime (map nodes are stable).
  const ShardedCollection* Find(std::string_view name) const;

  /// Race-free lookup for decomposition sites: copies the collection and
  /// the catalog version it was read at under one lock, so a concurrent
  /// re-registration cannot mutate the map a router is iterating. Returns
  /// false when the collection is unknown.
  bool Snapshot(std::string_view name, ShardedCollection* out,
                int64_t* version_out) const;

  /// Routes a partition-key value to the index of its owning shard.
  /// kHash: ShardHash(key) modulo shard count. kRange: the shard whose
  /// [lo, hi) contains the key's trailing integer; a key without a
  /// trailing integer or outside every range is an error (callers treat a
  /// routing error as "cannot prune" and broadcast instead).
  StatusOr<int> RouteKey(const ShardedCollection& collection,
                         std::string_view key) const;

  /// Monotonic registration counter (0 = empty catalog).
  int64_t version() const;

  // -- Fragment data versions (DESIGN.md §17) ------------------------------
  //
  // A second, orthogonal counter family: the authoritative DATA version of
  // each fragment, advanced by the 2PC coordinator after every committed
  // update that wrote the fragment. Unlike shard-map re-registration these
  // do NOT bump the catalog version — data churn must not StaleCatalog-fence
  // in-flight reads; instead the version is stamped into the xrpc:shard
  // scope so a lagging replica fences itself with StaleReplica. 0 means
  // "never updated since load" (the fence is then disabled).

  /// Authoritative data version of shard `shard_index` of `collection`.
  uint64_t FragmentDataVersion(std::string_view collection,
                               int shard_index) const;

  /// Raises the fragment's authoritative data version to `version` (no-op
  /// when already at or past it — commits may be acknowledged out of order
  /// and the advance must be idempotent).
  void AdvanceFragmentDataVersion(std::string_view collection, int shard_index,
                                  uint64_t version);

  /// Every fragment of `collection` whose data version is non-zero, as
  /// (shard_index, version) pairs — what a rejoining replica diffs its
  /// applied versions against.
  std::vector<std::pair<int, uint64_t>> FragmentDataVersions(
      std::string_view collection) const;

  std::vector<std::string> CollectionNames() const;

  /// Observer invoked whenever RouteKey fails to place a key (callers then
  /// broadcast to every shard). The catalog is a leaf library, so metrics
  /// are injected rather than linked: PeerNetwork wires this listener to
  /// RpcMetrics::RecordRouteMiss. Independently of the listener the first
  /// miss per collection is logged to stderr — a quietly regressed routing
  /// predicate otherwise hides as an N-fold fan-out.
  using RouteMissListener = std::function<void(const std::string& collection)>;
  void set_route_miss_listener(RouteMissListener listener);

  /// True for logical shard destinations: "shard:<collection>".
  static bool IsShardUri(std::string_view uri);
  /// The collection name of a shard URI ("" when not a shard URI).
  static std::string_view CollectionOf(std::string_view uri);
  /// Renders the logical destination of a collection name.
  static std::string ShardUri(std::string_view collection);

 private:
  void ReportRouteMiss(const std::string& collection,
                       const std::string& why) const;

  mutable std::mutex mu_;
  std::map<std::string, ShardedCollection, std::less<>> collections_;
  int64_t version_ = 0;
  /// Authoritative per-fragment data versions, keyed "<collection>#<shard>".
  /// Survives shard-map re-registration (a rebalance moves a fragment, it
  /// does not rewind its history).
  std::map<std::string, uint64_t> fragment_versions_;
  RouteMissListener route_miss_listener_;
  /// Collections whose first route miss has already been logged.
  mutable std::set<std::string> miss_logged_;
};

}  // namespace xrpc::core

#endif  // XRPC_CORE_CATALOG_H_
