#include "core/peer_network.h"

#include <chrono>

#include "base/clock.h"
#include "base/string_util.h"
#include "compiler/loop_lift.h"
#include "net/uri.h"
#include "server/remote_docs.h"
#include "server/wsat.h"
#include "xquery/interpreter.h"
#include "xquery/parser.h"

namespace xrpc::core {

namespace {

int64_t WallClockMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// PutSink writing fn:put documents into the local database.
class LocalPutSink : public xquery::PutSink {
 public:
  explicit LocalPutSink(server::Database* db) : db_(db) {}
  Status Put(const std::string& uri, xml::NodePtr doc) override {
    db_->PutDocument(uri, std::move(doc));
    return Status::OK();
  }

 private:
  server::Database* db_;
};

/// Applies a locally produced pending update list against the local
/// database, bumping versions of written documents.
Status ApplyLocalUpdates(server::Database* db,
                         xquery::PendingUpdateList* pul) {
  std::map<const xml::Node*, std::string> root_to_name;
  for (const std::string& name : db->DocumentNames()) {
    auto doc = db->GetDocument(name);
    if (doc.ok()) root_to_name[doc.value().get()] = name;
  }
  std::vector<std::string> written;
  for (const auto& entry : pul->entries()) {
    const xquery::UpdatePrimitive& p = entry.primitive;
    if (p.kind == xquery::UpdatePrimitive::Kind::kPut) continue;
    if (p.target.node() == nullptr) continue;
    auto it = root_to_name.find(p.target.node()->Root());
    if (it != root_to_name.end()) written.push_back(it->second);
  }
  LocalPutSink sink(db);
  XRPC_RETURN_IF_ERROR(xquery::ApplyUpdates(pul, &sink));
  for (const std::string& name : written) {
    auto doc = db->GetDocument(name);
    if (doc.ok()) db->PutDocument(name, doc.value());
  }
  return Status::OK();
}

void CountExecuteAt(const xquery::Expr& e, int* count, bool* in_loop) {
  if (e.kind == xquery::ExprKind::kExecuteAt) ++*count;
  if (e.kind == xquery::ExprKind::kFlwor) {
    for (const auto& c : e.clauses) {
      if (c.kind == xquery::FlworClause::Kind::kFor) *in_loop = true;
    }
  }
  for (const auto& c : e.children) {
    if (c) CountExecuteAt(*c, count, in_loop);
  }
  for (const auto& c : e.clauses) {
    if (c.expr) CountExecuteAt(*c.expr, count, in_loop);
  }
  if (e.where) CountExecuteAt(*e.where, count, in_loop);
  for (const auto& s : e.order_by) {
    if (s.key) CountExecuteAt(*s.key, count, in_loop);
  }
  if (e.ret) CountExecuteAt(*e.ret, count, in_loop);
  for (const auto& p : e.predicates) {
    if (p) CountExecuteAt(*p, count, in_loop);
  }
  for (const auto& a : e.attributes) {
    if (a) CountExecuteAt(*a, count, in_loop);
  }
  if (e.name_expr) CountExecuteAt(*e.name_expr, count, in_loop);
  for (const auto& s : e.steps) {
    for (const auto& p : s.predicates) {
      if (p) CountExecuteAt(*p, count, in_loop);
    }
  }
}

/// Compile-time detection of "simple XRPC queries" (Section 3.2): exactly
/// one non-nested XRPC call — such queries send at most one request per
/// peer and get repeatable reads without the queryID machinery.
bool IsSimpleXrpcQuery(const xquery::MainModule& query) {
  if (!query.prolog.functions.empty()) return false;  // may nest calls
  int count = 0;
  bool in_loop = false;
  CountExecuteAt(*query.body, &count, &in_loop);
  return count == 1 && !in_loop;
}

}  // namespace

const char* EngineKindToString(EngineKind kind) {
  switch (kind) {
    case EngineKind::kRelational:
      return "relational";
    case EngineKind::kRelationalNoCache:
      return "relational-nocache";
    case EngineKind::kInterpreter:
      return "interpreter";
    case EngineKind::kInterpreterNoCache:
      return "interpreter-nocache";
    case EngineKind::kWrapper:
      return "wrapper";
  }
  return "unknown";
}

Peer::Peer(std::string name, EngineKind kind, net::SimulatedNetwork* network,
           const Catalog* catalog)
    : name_(std::move(name)), uri_("xrpc://" + name_), kind_(kind),
      network_(network) {
  server::ExecutionEngine* engine = nullptr;
  switch (kind_) {
    case EngineKind::kRelational: {
      compiler::RelationalEngine::Options opts;
      opts.use_function_cache = true;
      relational_ = std::make_unique<compiler::RelationalEngine>(opts);
      engine = relational_.get();
      break;
    }
    case EngineKind::kRelationalNoCache: {
      compiler::RelationalEngine::Options opts;
      opts.use_function_cache = false;
      opts.registry = &registry_;
      relational_ = std::make_unique<compiler::RelationalEngine>(opts);
      engine = relational_.get();
      break;
    }
    case EngineKind::kInterpreter:
      interpreter_ = std::make_unique<server::InterpreterEngine>();
      engine = interpreter_.get();
      break;
    case EngineKind::kInterpreterNoCache: {
      server::InterpreterEngine::Options opts;
      opts.reparse_per_request = true;
      opts.registry = &registry_;
      interpreter_ = std::make_unique<server::InterpreterEngine>(opts);
      engine = interpreter_.get();
      break;
    }
    case EngineKind::kWrapper:
      wrapper_ = std::make_unique<wrapper::WrapperEngine>();
      engine = wrapper_.get();
      break;
  }
  service_ = std::make_unique<server::XrpcService>(
      server::XrpcService::Options{uri_, catalog}, &db_, &registry_, engine,
      network_);
  // Deadlines/cancellation are measured against the owning network's
  // virtual clock, so simulated latency (not host wall time) ages budgets.
  service_->set_time_source(
      [network = network_] { return network->clock().NowMicros(); });
  network_->RegisterPeer(net::ParseXrpcUri(uri_).value(), service_.get());
  (void)registry_.RegisterModule(server::SystemModuleSource());
}

void Peer::Disconnect() {
  network_->DisconnectPeer(net::ParseXrpcUri(uri_).value());
}

void Peer::Reconnect() {
  network_->RegisterPeer(net::ParseXrpcUri(uri_).value(), service_.get());
}

Status Peer::AddDocument(const std::string& doc_name,
                         std::string_view xml_text) {
  return db_.PutDocumentText(doc_name, xml_text);
}

Status Peer::AddDocumentNode(const std::string& doc_name, xml::NodePtr doc) {
  db_.PutDocument(doc_name, std::move(doc));
  return Status::OK();
}

Status Peer::RegisterModule(std::string_view source,
                            const std::string& location) {
  return registry_.RegisterModule(source, location);
}

PeerNetwork::PeerNetwork(net::NetworkProfile profile)
    : network_(profile),
      // Default policy: single attempt (no retries) so transport failures
      // keep surfacing fail-fast; set_retry_policy() opts into resilience.
      // Backoff "sleeps" advance the virtual clock — fully deterministic.
      transport_(&network_, net::RetryPolicy{.max_attempts = 1}, &metrics_,
                 [this](int64_t us) { network_.clock().Advance(us); },
                 /*jitter_seed=*/42,
                 [this] { return network_.clock().NowMicros(); }) {
  network_.set_metrics(&metrics_);
  // A RouteKey miss silently degrades pruning to broadcast; count every
  // occurrence in the shared registry (the catalog itself cannot link the
  // metrics library — it sits below it in the layering).
  catalog_.set_route_miss_listener([this](const std::string& collection) {
    metrics_.RecordRouteMiss(collection);
  });
}

void PeerNetwork::EnableParallelDispatch(int threads) {
  if (threads < 1) threads = 1;
  dispatch_pool_ = std::make_unique<net::ThreadPool>(threads);
}

void PeerNetwork::EnableParallelExec(int threads) {
  if (threads < 1) threads = 1;
  exec_threads_ = threads;
  exec_pool_.reset();
  if (threads > 1) {
    exec_pool_ = std::make_unique<net::ThreadPool>(
        static_cast<size_t>(threads));
  }
  for (auto& [name, peer] : peers_) {
    if (peer->relational_ != nullptr) {
      peer->relational_->EnableParallelExec(threads);
    }
  }
}

void PeerNetwork::EnableCircuitBreaker(net::CircuitBreaker::Policy policy) {
  breaker_ = std::make_unique<net::CircuitBreaker>(
      policy, [this] { return network_.clock().NowMicros(); });
  breaker_->set_metrics(&metrics_);
  transport_.set_circuit_breaker(breaker_.get());
}

Peer* PeerNetwork::AddPeer(const std::string& name, EngineKind kind) {
  auto peer = std::make_unique<Peer>(name, kind, &network_, &catalog_);
  Peer* raw = peer.get();
  peer->service_->set_metrics(&metrics_);
  if (exec_threads_ > 1 && peer->relational_ != nullptr) {
    peer->relational_->EnableParallelExec(exec_threads_);
  }
  peers_[name] = std::move(peer);
  return raw;
}

Peer* PeerNetwork::GetPeer(const std::string& name) {
  auto it = peers_.find(name);
  return it == peers_.end() ? nullptr : it->second.get();
}

StatusOr<ExecutionReport> PeerNetwork::Execute(const std::string& peer_name,
                                               const std::string& query_text,
                                               const ExecuteOptions& options) {
  Peer* p0 = GetPeer(peer_name);
  if (p0 == nullptr) {
    return Status::NotFound("no peer named " + peer_name);
  }
  XRPC_ASSIGN_OR_RETURN(xquery::MainModule query,
                        xquery::ParseMainModule(query_text));

  // Query-level options (Section 2.2).
  bool repeatable = false;
  int64_t timeout_sec = 30;
  if (const std::string* iso = query.prolog.FindOption(
          std::string("{") + xml::kXrpcNs + "}isolation")) {
    if (*iso == "repeatable") {
      repeatable = true;
    } else if (*iso != "none") {
      return Status::InvalidArgument("unknown xrpc:isolation: " + *iso);
    }
  }
  if (const std::string* t = query.prolog.FindOption(
          std::string("{") + xml::kXrpcNs + "}timeout")) {
    auto parsed = ParseInt64(*t);
    if (parsed.ok()) timeout_sec = parsed.value();
  }
  // End-to-end deadline: ExecuteOptions wins over the query's declared
  // option; 0 (neither set) keeps deadline-free behavior.
  int64_t deadline_budget_us = options.deadline_us;
  if (deadline_budget_us <= 0) {
    if (const std::string* d = query.prolog.FindOption(
            std::string("{") + xml::kXrpcNs + "}deadline")) {
      auto parsed = ParseInt64(*d);
      if (!parsed.ok() || parsed.value() < 0) {
        return Status::InvalidArgument("malformed xrpc:deadline option: " +
                                       *d);
      }
      deadline_budget_us = parsed.value();
    }
  }
  CancellationToken cancel_token;
  const CancellationToken* cancel = nullptr;
  if (deadline_budget_us > 0) {
    cancel_token.ArmDeadline(
        network_.clock().NowMicros() + deadline_budget_us,
        [this] { return network_.clock().NowMicros(); });
    cancel = &cancel_token;
  }

  server::RpcClient::Options copts;
  soap::QueryId qid;
  if (repeatable) {
    qid.id = peer_name + "-q" + std::to_string(next_query_serial_++);
    qid.host = p0->uri();
    qid.timestamp = WallClockMicros();
    qid.timeout_sec = timeout_sec;
    copts.isolation = server::IsolationLevel::kRepeatable;
    copts.query_id = qid;
    copts.simple_query = IsSimpleXrpcQuery(query);
  }
  // Outgoing requests go through the retry/timeout decorator, which also
  // records per-peer wire metrics (so the client itself must not record —
  // that would double count). Fan-out shape/latency is a separate metrics
  // dimension and is recorded by the client.
  copts.dispatch_pool = dispatch_pool_.get();
  copts.dispatch_metrics = &metrics_;
  if (deadline_budget_us > 0) {
    copts.deadline_us = cancel_token.deadline_us();
    copts.now_us = [this] { return network_.clock().NowMicros(); };
  }
  copts.catalog = &catalog_;
  server::RpcClient client(&transport_, copts);
  server::LiveDocumentProvider local_docs(&p0->db_);
  server::FederatedDocumentProvider federated(&local_docs, &client);
  // Sharded-collection resolution on top of federation: doc("shard:C")
  // assembles the whole collection at p0; a collection's logical name
  // resolves to p0-local fragments if it stores any.
  server::ShardDocumentProvider docs(&federated, &catalog_, p0->uri());

  ExecutionReport report;
  StopWatch wall;
  xquery::PendingUpdateList local_pul;

  bool try_relational = (p0->kind_ == EngineKind::kRelational ||
                         p0->kind_ == EngineKind::kRelationalNoCache) &&
                        !options.force_one_at_a_time;
  bool evaluated = false;
  if (try_relational) {
    compiler::LoopLiftConfig cfg;
    cfg.documents = &docs;
    cfg.modules = &p0->registry_;
    cfg.rpc = &client;
    cfg.shreds = &p0->relational_->shred_cache();
    cfg.trace_bulk_rpc = options.trace_bulk_rpc;
    cfg.enable_hoisting = !options.disable_hoisting;
    cfg.enable_join_rewrite = !options.disable_join_rewrite;
    cfg.cancel = cancel;
    cfg.catalog = &catalog_;
    // Morsel-parallel execution: the per-query override wins; otherwise
    // the network-wide pool is borrowed. An override differing from the
    // network setting gets its own evaluator-owned pool.
    int exec_threads =
        options.exec_threads > 0 ? options.exec_threads : exec_threads_;
    cfg.exec_threads = exec_threads;
    if (exec_threads == exec_threads_) cfg.exec_pool = exec_pool_.get();
    cfg.metrics = &metrics_;
    compiler::LoopLiftedEvaluator evaluator(cfg);
    auto result = evaluator.EvaluateQuery(query);
    if (result.ok()) {
      report.result = std::move(result).value();
      report.used_relational = true;
      report.traces = evaluator.traces();
      evaluated = true;
    } else if (result.status().code() == StatusCode::kUnsupported) {
      report.fell_back = true;  // interpret below
    } else {
      return result.status();
    }
  }
  if (!evaluated) {
    xquery::Interpreter::Config cfg;
    cfg.documents = &docs;
    cfg.modules = &p0->registry_;
    cfg.rpc = &client;
    cfg.cancel = cancel;
    xquery::Interpreter interpreter(cfg);
    XRPC_ASSIGN_OR_RETURN(xquery::QueryResult qr,
                          interpreter.EvaluateQuery(query));
    report.result = std::move(qr.sequence);
    local_pul = std::move(qr.updates);
  }

  report.wall_micros = wall.ElapsedMicros();
  report.network_micros = client.network_micros();
  report.remote_micros = client.remote_micros();
  report.requests_sent = client.requests_sent();
  report.participants = client.participating_peers();

  if (repeatable && client.sent_updating()) {
    // Distributed atomic commit over WS-AtomicTransaction (Section 2.3).
    // The originating peer doubles as the durable coordinator journal; a
    // participant whose Commit keeps failing is retried under the network's
    // retry policy (backoff advances the virtual clock) and finally parked
    // in-doubt without failing the decided transaction.
    std::vector<std::string> participants(report.participants.begin(),
                                          report.participants.end());
    server::TwoPhaseCommitOptions txn_options;
    txn_options.journal = &p0->service();
    txn_options.commit_retry = transport_.policy();
    txn_options.sleep = [this](int64_t us) { network_.clock().Advance(us); };
    txn_options.metrics = &metrics_;
    XRPC_ASSIGN_OR_RETURN(server::CommitOutcome outcome,
                          server::RunTwoPhaseCommit(&network_, participants,
                                                    qid.id, txn_options));
    report.committed = outcome.committed;
    report.abort_reason = outcome.abort_reason;
    report.commit_retries = outcome.commit_retries;
    report.in_doubt = outcome.in_doubt;
    if (outcome.committed) {
      // The decision is durable; publish each written fragment's new data
      // version (piggybacked on the Prepare votes) so routing stamps it
      // into subsequent xrpc:shard scopes — a copy that missed this commit
      // then self-fences with StaleReplica until repaired (DESIGN.md §17).
      for (const server::WrittenFragment& f : outcome.fragments) {
        catalog_.AdvanceFragmentDataVersion(f.collection, f.shard_index,
                                            f.version);
      }
    }
    if (outcome.committed && !local_pul.empty()) {
      XRPC_RETURN_IF_ERROR(ApplyLocalUpdates(&p0->db_, &local_pul));
    }
  } else if (!local_pul.empty()) {
    XRPC_RETURN_IF_ERROR(ApplyLocalUpdates(&p0->db_, &local_pul));
  }
  return report;
}

}  // namespace xrpc::core
