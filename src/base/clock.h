#ifndef XRPC_BASE_CLOCK_H_
#define XRPC_BASE_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace xrpc {

/// Accumulates simulated time, used by the simulated network transport to
/// model wire latency and bandwidth without sleeping.
///
/// The paper's experiments ran on a real 1 Gb/s LAN; we account the network
/// component of elapsed time virtually (deterministic, hardware-independent)
/// and combine it with measured CPU time in the benchmark harness.
///
/// Atomic: parallel multi-destination dispatch advances the clock from
/// several worker threads at once (retry backoff "sleeps" in particular).
class VirtualClock {
 public:
  VirtualClock() = default;

  /// Advances simulated time by `us` microseconds.
  void Advance(int64_t us) { now_us_.fetch_add(us, std::memory_order_relaxed); }

  /// Current simulated time in microseconds since Reset().
  int64_t NowMicros() const { return now_us_.load(std::memory_order_relaxed); }

  void Reset() { now_us_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> now_us_{0};
};

/// Measures wall-clock time of a code region (steady clock).
class StopWatch {
 public:
  StopWatch() : start_(std::chrono::steady_clock::now()) {}

  /// Elapsed wall time in microseconds since construction or last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace xrpc

#endif  // XRPC_BASE_CLOCK_H_
