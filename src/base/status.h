#ifndef XRPC_BASE_STATUS_H_
#define XRPC_BASE_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace xrpc {

/// Error categories used across the XRPC library.
///
/// The taxonomy mirrors the failure classes of the paper: static (parse/type)
/// errors, dynamic evaluation errors, network faults, and the SOAP Fault
/// conditions an XRPC server reports back to the query originator.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed a malformed value.
  kParseError,        ///< XML or XQuery syntax error.
  kTypeError,         ///< XQuery static or dynamic type error (XPTY*).
  kEvalError,         ///< XQuery dynamic error (FO*/XQDY*).
  kNotFound,          ///< Unknown document, module, function or peer.
  kNetworkError,      ///< Transport-level failure.
  kSoapFault,         ///< Remote peer answered with a SOAP Fault.
  kIsolationError,    ///< Expired/unknown queryID or snapshot conflict.
  kTransactionError,  ///< 2PC prepare/commit failure.
  kUnsupported,       ///< Feature outside the implemented XQuery subset.
  kInternal,          ///< Invariant violation; indicates a library bug.
  kDeadlineExceeded,  ///< The query's end-to-end time budget ran out.
  kCancelled,         ///< The query was cooperatively cancelled.
  kStaleCatalog,      ///< Shard-routed call fenced: catalog versions differ.
  kStaleReplica,      ///< Replica fenced: fragment data behind the version
                      ///< the caller routed by (retriable at another copy).
};

/// Returns a stable human-readable name, e.g. "ParseError".
const char* StatusCodeToString(StatusCode code);

/// Operation outcome carrying an error code and message; no exceptions are
/// used anywhere in this library (RocksDB/Arrow idiom).
///
/// A default-constructed Status is OK. Statuses are cheap to copy in the OK
/// case and are annotated [[nodiscard]] at factory functions so that dropped
/// errors are compiler-visible.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  [[nodiscard]] static Status EvalError(std::string msg) {
    return Status(StatusCode::kEvalError, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status NetworkError(std::string msg) {
    return Status(StatusCode::kNetworkError, std::move(msg));
  }
  [[nodiscard]] static Status SoapFault(std::string msg) {
    return Status(StatusCode::kSoapFault, std::move(msg));
  }
  [[nodiscard]] static Status IsolationError(std::string msg) {
    return Status(StatusCode::kIsolationError, std::move(msg));
  }
  [[nodiscard]] static Status TransactionError(std::string msg) {
    return Status(StatusCode::kTransactionError, std::move(msg));
  }
  [[nodiscard]] static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  [[nodiscard]] static Status StaleCatalog(std::string msg) {
    return Status(StatusCode::kStaleCatalog, std::move(msg));
  }
  [[nodiscard]] static Status StaleReplica(std::string msg) {
    return Status(StatusCode::kStaleReplica, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status out of the enclosing function.
#define XRPC_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::xrpc::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                     \
  } while (0)

/// Evaluates a StatusOr expression, assigning the value on success and
/// returning the error otherwise. `lhs` may declare a new variable.
#define XRPC_ASSIGN_OR_RETURN(lhs, expr)                        \
  XRPC_ASSIGN_OR_RETURN_IMPL_(                                  \
      XRPC_STATUS_CONCAT_(_status_or_, __LINE__), lhs, expr)

#define XRPC_STATUS_CONCAT_INNER_(a, b) a##b
#define XRPC_STATUS_CONCAT_(a, b) XRPC_STATUS_CONCAT_INNER_(a, b)
#define XRPC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace xrpc

#endif  // XRPC_BASE_STATUS_H_
