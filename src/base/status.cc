#include "base/status.h"

namespace xrpc {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kEvalError:
      return "EvalError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kNetworkError:
      return "NetworkError";
    case StatusCode::kSoapFault:
      return "SoapFault";
    case StatusCode::kIsolationError:
      return "IsolationError";
    case StatusCode::kTransactionError:
      return "TransactionError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kStaleCatalog:
      return "StaleCatalog";
    case StatusCode::kStaleReplica:
      return "StaleReplica";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace xrpc
