#ifndef XRPC_BASE_PRNG_H_
#define XRPC_BASE_PRNG_H_

#include <cstdint>

namespace xrpc {

/// Small deterministic PRNG (SplitMix64) used wherever randomness must be
/// reproducible across runs and platforms: fault-injection schedules in the
/// simulated network and retry-backoff jitter. std::mt19937 is avoided so
/// that a seed pins the exact sequence independently of the standard
/// library implementation.
class DeterministicPrng {
 public:
  explicit DeterministicPrng(uint64_t seed) : state_(seed) {}

  uint64_t NextUint64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  void Reseed(uint64_t seed) { state_ = seed; }

 private:
  uint64_t state_;
};

}  // namespace xrpc

#endif  // XRPC_BASE_PRNG_H_
