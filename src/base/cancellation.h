#ifndef XRPC_BASE_CANCELLATION_H_
#define XRPC_BASE_CANCELLATION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <utility>

#include "base/status.h"

namespace xrpc {

/// Cooperative cancellation signal shared by everything working on one
/// query: the server request handler arms it, both execution engines poll
/// it at evaluation-step boundaries, and nested RPC stamping reads its
/// remaining budget.
///
/// Two trip paths:
///  - explicit: Cancel(status) — e.g. an administrator killing a query, or
///    the request handler propagating a caller's give-up;
///  - deadline: ArmDeadline(deadline_us, now) installs an absolute expiry
///    instant on an injected clock (virtual or steady); the token trips
///    itself with kDeadlineExceeded the first time a poll observes
///    now() >= deadline. Budgets travel the wire as *remaining* micros, so
///    the clock never needs to be synchronized across peers.
///
/// First trip wins; later Cancel() calls are ignored. Thread-safe: polls
/// are an atomic load on the fast path; the slow path (deadline check,
/// status read) takes a mutex. Arming must happen before the token is
/// shared with other threads.
class CancellationToken {
 public:
  using NowFn = std::function<int64_t()>;

  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Installs an absolute expiry instant (micros on `now`'s clock). Call
  /// before handing the token to the engines; not thread-safe against
  /// concurrent polls.
  void ArmDeadline(int64_t deadline_us, NowFn now) {
    deadline_us_ = deadline_us;
    now_ = std::move(now);
  }

  /// Trips the token (first caller wins).
  void Cancel(Status status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (tripped_.load(std::memory_order_relaxed)) return;
    status_ = std::move(status);
    tripped_.store(true, std::memory_order_release);
  }

  /// True once tripped (explicitly or by an expired deadline). Polling is
  /// what advances the deadline path: an armed token trips itself here.
  bool cancelled() const {
    if (tripped_.load(std::memory_order_acquire)) return true;
    if (deadline_us_ > 0 && now_ && now_() >= deadline_us_) {
      const_cast<CancellationToken*>(this)->Cancel(Status::DeadlineExceeded(
          "deadline of " + std::to_string(deadline_us_) + "us passed"));
      return true;
    }
    return false;
  }

  /// OK while live; the trip status once cancelled. Engines poll this and
  /// propagate the non-OK status out of their evaluation loop.
  Status CheckCancelled() const {
    if (!cancelled()) return Status::OK();
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }

  /// Remaining budget in micros (INT64_MAX when no deadline is armed,
  /// 0 once expired). What nested relocation hops stamp on the wire.
  int64_t RemainingMicros() const {
    if (deadline_us_ <= 0 || !now_) {
      return std::numeric_limits<int64_t>::max();
    }
    int64_t left = deadline_us_ - now_();
    return left > 0 ? left : 0;
  }

  int64_t deadline_us() const { return deadline_us_; }

 private:
  mutable std::mutex mu_;  ///< guards status_
  std::atomic<bool> tripped_{false};
  Status status_;
  int64_t deadline_us_ = 0;  ///< 0 = no deadline armed
  NowFn now_;
};

/// Amortized cancellation polling for tight per-row loops: Tick() consults
/// the token only every `stride` calls, keeping the poll (an atomic load
/// plus, for armed deadlines, a clock read through std::function) off the
/// per-row fast path. Morsel boundaries poll the token directly; kernels
/// iterating WITHIN a morsel or a serial operator tick a gate instead.
///
/// Null-token tolerant, so call sites need no guard. Not thread-safe —
/// each worker owns its gate.
class PollGate {
 public:
  explicit PollGate(const CancellationToken* token, uint32_t stride = 256)
      : token_(token), stride_(stride == 0 ? 1 : stride) {}

  /// True once the token tripped (checked every `stride` ticks).
  bool Tick() {
    if (token_ == nullptr) return false;
    if (tripped_) return true;
    if (++count_ % stride_ != 0) return false;
    tripped_ = token_->cancelled();
    return tripped_;
  }

  /// The trip status after Tick() returned true (OK before that).
  Status status() const {
    return token_ == nullptr ? Status::OK() : token_->CheckCancelled();
  }

 private:
  const CancellationToken* token_;
  const uint32_t stride_;
  uint32_t count_ = 0;
  bool tripped_ = false;
};

}  // namespace xrpc

#endif  // XRPC_BASE_CANCELLATION_H_
