#include "base/string_util.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace xrpc {

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && IsXmlWhitespace(s[b])) ++b;
  size_t e = s.size();
  while (e > b && IsXmlWhitespace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

StatusOr<int64_t> ParseInt64(std::string_view s) {
  std::string_view t = TrimWhitespace(s);
  if (t.empty()) return Status::InvalidArgument("empty integer literal");
  size_t i = 0;
  bool neg = false;
  if (t[i] == '+' || t[i] == '-') {
    neg = (t[i] == '-');
    ++i;
  }
  if (i == t.size()) return Status::InvalidArgument("sign without digits");
  uint64_t acc = 0;
  const uint64_t limit =
      neg ? static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) + 1
          : static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
  for (; i < t.size(); ++i) {
    char c = t[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("invalid integer literal: " +
                                     std::string(s));
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (acc > (limit - digit) / 10) {
      return Status::InvalidArgument("integer overflow: " + std::string(s));
    }
    acc = acc * 10 + digit;
  }
  if (neg) {
    return static_cast<int64_t>(~acc + 1);  // two's complement negate
  }
  return static_cast<int64_t>(acc);
}

StatusOr<double> ParseDouble(std::string_view s) {
  std::string t(TrimWhitespace(s));
  if (t.empty()) return Status::InvalidArgument("empty double literal");
  if (t == "INF" || t == "+INF") return std::numeric_limits<double>::infinity();
  if (t == "-INF") return -std::numeric_limits<double>::infinity();
  if (t == "NaN") return std::numeric_limits<double>::quiet_NaN();
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size() || errno == ERANGE) {
    if (errno == ERANGE && end == t.c_str() + t.size()) {
      return v;  // denormal underflow / overflow to inf is acceptable
    }
    return Status::InvalidArgument("invalid double literal: " + t);
  }
  return v;
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "INF" : "-INF";
  if (v == 0) return std::signbit(v) ? "-0" : "0";
  double r = std::round(v);
  if (r == v && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Shortest representation that round-trips.
  for (int prec = 1; prec <= 17; ++prec) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string CollapseWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_ws = true;  // leading whitespace is dropped
  for (char c : s) {
    if (IsXmlWhitespace(c)) {
      in_ws = true;
    } else {
      if (in_ws && !out.empty()) out.push_back(' ');
      out.push_back(c);
      in_ws = false;
    }
  }
  return out;
}

}  // namespace xrpc
