#ifndef XRPC_BASE_STATUSOR_H_
#define XRPC_BASE_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "base/status.h"

namespace xrpc {

/// A value-or-error carrier: either holds a `T` or a non-OK Status.
///
/// Construction from a value yields an OK StatusOr; construction from a
/// non-OK Status yields an error. Constructing from an OK Status is a
/// programming error (asserted).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr constructed from OK Status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK Status");
    }
  }
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace xrpc

#endif  // XRPC_BASE_STATUSOR_H_
