#ifndef XRPC_BASE_STRING_UTIL_H_
#define XRPC_BASE_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"

namespace xrpc {

/// True if `c` is XML whitespace (space, tab, CR, LF).
inline bool IsXmlWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// Strips leading and trailing XML whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// True if `s` begins with / ends with the given affix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict signed 64-bit integer parse of the full string (XML Schema
/// integer lexical space: optional sign, digits).
StatusOr<int64_t> ParseInt64(std::string_view s);

/// Strict double parse of the full string; accepts XML Schema double
/// lexical forms including "INF", "-INF" and "NaN".
StatusOr<double> ParseDouble(std::string_view s);

/// Formats a double in XQuery number-to-string style: integral values
/// without a fractional part ("3" not "3.0" is NOT XQuery style -- XQuery
/// serializes xs:double 3 as "3"), shortest round-trip representation
/// otherwise.
std::string FormatDouble(double v);

/// Collapses runs of XML whitespace to single spaces and trims (the
/// whitespace facet "collapse").
std::string CollapseWhitespace(std::string_view s);

}  // namespace xrpc

#endif  // XRPC_BASE_STRING_UTIL_H_
