#ifndef XRPC_XML_NODE_H_
#define XRPC_XML_NODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "xml/qname.h"

namespace xrpc::xml {

class Node;
using NodePtr = std::shared_ptr<Node>;

/// The seven XDM node kinds (namespace nodes are represented as ordinary
/// attributes in the xmlns namespace, as the paper's protocol does).
enum class NodeKind {
  kDocument,
  kElement,
  kAttribute,
  kText,
  kComment,
  kProcessingInstruction,
};

const char* NodeKindToString(NodeKind kind);

/// A node of an in-memory XML tree.
///
/// Ownership: a parent owns its children and attributes via shared_ptr;
/// `parent()` is a non-owning back pointer. Anything that retains a node
/// long-term must also retain an owner of its tree root (see
/// `xdm::Item::anchor`), which the XDM layer does automatically.
///
/// Node identity is pointer identity. Every node receives a globally unique,
/// monotonically increasing creation ordinal; roots' ordinals define a stable
/// order between distinct trees (the "implementation-defined consistent
/// document order" XDM requires).
class Node : public std::enable_shared_from_this<Node> {
 public:
  /// Factory functions; nodes are always heap-allocated and shared.
  static NodePtr NewDocument();
  static NodePtr NewElement(QName name);
  static NodePtr NewAttribute(QName name, std::string value);
  static NodePtr NewText(std::string value);
  static NodePtr NewComment(std::string value);
  static NodePtr NewProcessingInstruction(std::string target,
                                          std::string value);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const { return kind_; }
  const QName& name() const { return name_; }
  const std::string& value() const { return value_; }
  void set_value(std::string v) {
    value_ = std::move(v);
    BumpMutationStamp();
  }
  void set_name(QName name) {
    name_ = std::move(name);
    BumpMutationStamp();
  }

  Node* parent() const { return parent_; }
  const std::vector<NodePtr>& children() const { return children_; }
  const std::vector<NodePtr>& attributes() const { return attributes_; }
  uint64_t ordinal() const { return ordinal_; }

  /// Counter incremented on the tree root by every mutation anywhere in
  /// the tree; caches over shredded/derived representations compare it to
  /// detect staleness.
  uint64_t mutation_stamp() const { return mutation_stamp_; }

  /// Appends `child` (element/text/comment/PI or, for documents, element)
  /// as the last child. Adjacent text children are NOT merged here; the
  /// parser and constructors merge where required.
  void AppendChild(NodePtr child);

  /// Inserts `child` before the existing child `before` (which must be a
  /// child of this node).
  void InsertBefore(NodePtr child, const Node* before);

  /// Adds an attribute node. Replaces an existing attribute of equal name.
  void SetAttribute(NodePtr attr);

  /// Removes `child` from children or attributes; no-op if absent.
  void RemoveChild(const Node* child);

  /// Attribute lookup by expanded name; nullptr if absent.
  const Node* FindAttribute(const QName& name) const;

  /// Typed-value string: concatenation of descendant text for
  /// document/element, the value for attribute/text/comment/PI.
  std::string StringValue() const;

  /// Root of the containing tree (self if detached).
  Node* Root();
  const Node* Root() const;
  NodePtr RootPtr() { return Root()->shared_from_this(); }

  /// Deep copy producing a detached tree with fresh node identities.
  NodePtr Clone() const;

  /// Zero-based position among the parent's children (attributes among the
  /// parent's attributes). Undefined for detached nodes.
  size_t IndexInParent() const { return index_in_parent_; }

 private:
  explicit Node(NodeKind kind);

  void AppendStringValue(std::string* out) const;
  void BumpMutationStamp() { ++Root()->mutation_stamp_; }

  NodeKind kind_;
  QName name_;
  std::string value_;
  Node* parent_ = nullptr;
  size_t index_in_parent_ = 0;
  std::vector<NodePtr> children_;
  std::vector<NodePtr> attributes_;
  uint64_t ordinal_;
  uint64_t mutation_stamp_ = 0;
};

/// Total order over nodes consistent with document order: within one tree,
/// document order (attributes follow their owner element, before its
/// children); across trees, by root creation ordinal. Returns <0, 0, >0.
int CompareDocumentOrder(const Node* a, const Node* b);

/// True if `ancestor` is an ancestor of `node` (not self).
bool IsAncestorOf(const Node* ancestor, const Node* node);

}  // namespace xrpc::xml

#endif  // XRPC_XML_NODE_H_
