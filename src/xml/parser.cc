#include "xml/parser.h"

#include <cstdint>
#include <map>
#include <vector>

#include "base/string_util.h"

namespace xrpc::xml {

namespace {

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':' || static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

// One namespace scope frame: prefix -> URI bindings introduced by an element.
using NsBindings = std::vector<std::pair<std::string, std::string>>;

class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : in_(input), options_(options) {
    // Root namespace scope: the reserved xml prefix.
    scopes_.push_back({{"xml", "http://www.w3.org/XML/1998/namespace"}});
  }

  StatusOr<NodePtr> ParseDocument() {
    NodePtr doc = Node::NewDocument();
    XRPC_RETURN_IF_ERROR(ParseProlog());
    XRPC_RETURN_IF_ERROR(ParseContent(doc.get(), /*top_level=*/true));
    SkipMisc();
    if (pos_ != in_.size()) {
      return Error("unexpected content after document element");
    }
    bool has_element = false;
    for (const NodePtr& c : doc->children()) {
      if (c->kind() == NodeKind::kElement) has_element = true;
    }
    if (!has_element) return Error("no document element");
    return doc;
  }

  StatusOr<NodePtr> ParseFragment() {
    NodePtr doc = Node::NewDocument();
    XRPC_RETURN_IF_ERROR(ParseContent(doc.get(), /*top_level=*/false));
    if (pos_ != in_.size()) return Error("unexpected trailing content");
    return doc;
  }

 private:
  Status Error(const std::string& msg) {
    // Report 1-based line for diagnostics.
    int line = 1;
    for (size_t i = 0; i < pos_ && i < in_.size(); ++i) {
      if (in_[i] == '\n') ++line;
    }
    return Status::ParseError("XML parse error at line " +
                              std::to_string(line) + ": " + msg);
  }

  bool Eof() const { return pos_ >= in_.size(); }
  char Peek() const { return pos_ < in_.size() ? in_[pos_] : '\0'; }
  bool Lookahead(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }
  bool Consume(std::string_view s) {
    if (!Lookahead(s)) return false;
    pos_ += s.size();
    return true;
  }
  void SkipWs() {
    while (pos_ < in_.size() && IsXmlWhitespace(in_[pos_])) ++pos_;
  }

  Status ParseProlog() {
    if (Consume("\xEF\xBB\xBF")) {
      // UTF-8 byte order mark.
    }
    SkipWs();
    if (Lookahead("<?xml")) {
      size_t end = in_.find("?>", pos_);
      if (end == std::string_view::npos) return Error("unterminated XML decl");
      pos_ = end + 2;
    }
    SkipMisc();
    if (Lookahead("<!DOCTYPE")) {
      // Skip to matching '>' honoring an optional internal subset [...].
      int depth = 0;
      while (pos_ < in_.size()) {
        char c = in_[pos_++];
        if (c == '[') ++depth;
        if (c == ']') --depth;
        if (c == '>' && depth == 0) break;
      }
      SkipMisc();
    }
    return Status::OK();
  }

  // Skips whitespace, comments and PIs at the document level (discarded).
  void SkipMisc() {
    while (true) {
      SkipWs();
      if (Lookahead("<!--")) {
        size_t end = in_.find("-->", pos_);
        if (end == std::string_view::npos) {
          pos_ = in_.size();
          return;
        }
        pos_ = end + 3;
      } else if (Lookahead("<?")) {
        size_t end = in_.find("?>", pos_);
        if (end == std::string_view::npos) {
          pos_ = in_.size();
          return;
        }
        pos_ = end + 2;
      } else {
        return;
      }
    }
  }

  // Parses element content (or top-level content) into `parent`.
  Status ParseContent(Node* parent, bool top_level) {
    std::string text;
    auto flush_text = [&]() {
      if (text.empty()) return;
      bool all_ws = true;
      for (char c : text) {
        if (!IsXmlWhitespace(c)) {
          all_ws = false;
          break;
        }
      }
      bool drop = all_ws && (top_level || options_.strip_ignorable_whitespace);
      if (!drop) parent->AppendChild(Node::NewText(std::move(text)));
      text.clear();
    };

    while (!Eof()) {
      if (Lookahead("</")) {
        flush_text();
        return Status::OK();
      }
      if (Lookahead("<!--")) {
        flush_text();
        size_t end = in_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) return Error("unterminated comment");
        parent->AppendChild(
            Node::NewComment(std::string(in_.substr(pos_ + 4, end - pos_ - 4))));
        pos_ = end + 3;
        continue;
      }
      if (Lookahead("<![CDATA[")) {
        size_t end = in_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        text.append(in_.substr(pos_ + 9, end - pos_ - 9));
        pos_ = end + 3;
        continue;
      }
      if (Lookahead("<?")) {
        flush_text();
        XRPC_RETURN_IF_ERROR(ParsePi(parent));
        continue;
      }
      if (Peek() == '<') {
        flush_text();
        XRPC_RETURN_IF_ERROR(ParseElement(parent));
        if (top_level) SkipMisc();
        continue;
      }
      if (top_level) {
        return Error("text content outside the document element");
      }
      XRPC_RETURN_IF_ERROR(AppendCharData(&text));
    }
    flush_text();
    return Status::OK();
  }

  Status ParsePi(Node* parent) {
    pos_ += 2;
    std::string target;
    XRPC_RETURN_IF_ERROR(ParseName(&target));
    SkipWs();
    size_t end = in_.find("?>", pos_);
    if (end == std::string_view::npos) return Error("unterminated PI");
    parent->AppendChild(Node::NewProcessingInstruction(
        std::move(target), std::string(in_.substr(pos_, end - pos_))));
    pos_ = end + 2;
    return Status::OK();
  }

  Status AppendCharData(std::string* out) {
    while (!Eof() && Peek() != '<') {
      char c = in_[pos_];
      if (c == '&') {
        XRPC_RETURN_IF_ERROR(ParseReference(out));
      } else {
        out->push_back(c);
        ++pos_;
      }
    }
    return Status::OK();
  }

  Status ParseReference(std::string* out) {
    // pos_ is at '&'.
    size_t end = in_.find(';', pos_);
    if (end == std::string_view::npos || end - pos_ > 12) {
      return Error("malformed entity reference");
    }
    std::string_view name = in_.substr(pos_ + 1, end - pos_ - 1);
    pos_ = end + 1;
    if (name == "lt") {
      out->push_back('<');
    } else if (name == "gt") {
      out->push_back('>');
    } else if (name == "amp") {
      out->push_back('&');
    } else if (name == "quot") {
      out->push_back('"');
    } else if (name == "apos") {
      out->push_back('\'');
    } else if (!name.empty() && name[0] == '#') {
      uint32_t cp = 0;
      bool ok = name.size() > 1;
      if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
        for (size_t i = 2; i < name.size() && ok; ++i) {
          char c = name[i];
          uint32_t d;
          if (c >= '0' && c <= '9') {
            d = static_cast<uint32_t>(c - '0');
          } else if (c >= 'a' && c <= 'f') {
            d = static_cast<uint32_t>(c - 'a' + 10);
          } else if (c >= 'A' && c <= 'F') {
            d = static_cast<uint32_t>(c - 'A' + 10);
          } else {
            ok = false;
            break;
          }
          cp = cp * 16 + d;
        }
      } else {
        for (size_t i = 1; i < name.size() && ok; ++i) {
          if (name[i] < '0' || name[i] > '9') {
            ok = false;
            break;
          }
          cp = cp * 10 + static_cast<uint32_t>(name[i] - '0');
        }
      }
      if (!ok || cp == 0 || cp > 0x10FFFF) {
        return Error("invalid character reference");
      }
      AppendUtf8(cp, out);
    } else {
      return Error("unknown entity &" + std::string(name) + ";");
    }
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseName(std::string* out) {
    if (Eof() || !IsNameStartChar(Peek())) return Error("expected a name");
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    out->assign(in_.substr(start, pos_ - start));
    return Status::OK();
  }

  // Resolves prefix in the current scope stack. Empty prefix resolves to the
  // default namespace (which may be "").
  StatusOr<std::string> ResolvePrefix(const std::string& prefix) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      for (auto b = it->rbegin(); b != it->rend(); ++b) {
        if (b->first == prefix) return b->second;
      }
    }
    if (prefix.empty()) return std::string();
    return Status::ParseError("undeclared namespace prefix: " + prefix);
  }

  Status ParseElement(Node* parent) {
    ++pos_;  // '<'
    std::string raw_name;
    XRPC_RETURN_IF_ERROR(ParseName(&raw_name));

    struct RawAttr {
      std::string name;
      std::string value;
    };
    std::vector<RawAttr> raw_attrs;
    NsBindings bindings;

    bool self_closing = false;
    while (true) {
      SkipWs();
      if (Consume("/>")) {
        self_closing = true;
        break;
      }
      if (Consume(">")) break;
      if (Eof()) return Error("unterminated start tag");
      if (Lookahead("/")) return Error("malformed empty-element tag");
      RawAttr attr;
      XRPC_RETURN_IF_ERROR(ParseName(&attr.name));
      SkipWs();
      if (!Consume("=")) return Error("expected '=' in attribute");
      SkipWs();
      char quote = Peek();
      if (quote != '"' && quote != '\'') {
        return Error("expected quoted attribute value");
      }
      ++pos_;
      while (!Eof() && Peek() != quote) {
        if (Peek() == '&') {
          XRPC_RETURN_IF_ERROR(ParseReference(&attr.value));
        } else if (Peek() == '<') {
          return Error("'<' in attribute value");
        } else {
          attr.value.push_back(in_[pos_++]);
        }
      }
      if (!Consume(std::string_view(&quote, 1))) {
        return Error("unterminated attribute value");
      }
      if (attr.name == "xmlns") {
        bindings.emplace_back("", attr.value);
      } else if (StartsWith(attr.name, "xmlns:")) {
        bindings.emplace_back(attr.name.substr(6), attr.value);
      } else {
        raw_attrs.push_back(std::move(attr));
      }
    }

    scopes_.push_back(std::move(bindings));

    auto split = [](const std::string& raw) {
      size_t colon = raw.find(':');
      if (colon == std::string::npos) {
        return std::pair<std::string, std::string>("", raw);
      }
      return std::pair<std::string, std::string>(raw.substr(0, colon),
                                                 raw.substr(colon + 1));
    };

    auto [eprefix, elocal] = split(raw_name);
    XRPC_ASSIGN_OR_RETURN(std::string euri, ResolvePrefix(eprefix));
    NodePtr elem = Node::NewElement(QName(euri, elocal, eprefix));

    for (RawAttr& a : raw_attrs) {
      auto [aprefix, alocal] = split(a.name);
      std::string auri;
      if (!aprefix.empty()) {
        // Unprefixed attributes are in no namespace per XML Namespaces.
        XRPC_ASSIGN_OR_RETURN(auri, ResolvePrefix(aprefix));
      }
      if (elem->FindAttribute(QName(auri, alocal)) != nullptr) {
        return Error("duplicate attribute " + a.name);
      }
      elem->SetAttribute(Node::NewAttribute(QName(auri, alocal, aprefix),
                                            std::move(a.value)));
    }

    if (!self_closing) {
      XRPC_RETURN_IF_ERROR(ParseContent(elem.get(), /*top_level=*/false));
      if (!Consume("</")) return Error("expected end tag for " + raw_name);
      std::string end_name;
      XRPC_RETURN_IF_ERROR(ParseName(&end_name));
      SkipWs();
      if (!Consume(">")) return Error("malformed end tag");
      if (end_name != raw_name) {
        return Error("mismatched end tag </" + end_name + ">, expected </" +
                     raw_name + ">");
      }
    }

    scopes_.pop_back();
    parent->AppendChild(std::move(elem));
    return Status::OK();
  }

  std::string_view in_;
  size_t pos_ = 0;
  ParseOptions options_;
  std::vector<NsBindings> scopes_;
};

}  // namespace

StatusOr<NodePtr> ParseXml(std::string_view input, const ParseOptions& options) {
  Parser p(input, options);
  return p.ParseDocument();
}

StatusOr<NodePtr> ParseXmlFragment(std::string_view input,
                                   const ParseOptions& options) {
  Parser p(input, options);
  return p.ParseFragment();
}

}  // namespace xrpc::xml
