#include "xml/serializer.h"

#include <vector>

namespace xrpc::xml {

std::string EscapeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      // '>' is escaped unconditionally, which also covers the "]]>"
      // sequence in character data (XML 1.0 §2.4 forbids a literal "]]>"
      // outside CDATA): it serializes as "]]&gt;".
      case '>':
        out += "&gt;";
        break;
      // A literal CR in character data would be normalized away to LF by
      // any conforming parser on re-parse (XML 1.0 §2.11), silently
      // corrupting the value; only the character reference survives a
      // round trip.
      case '\r':
        out += "&#13;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\n':
        out += "&#10;";
        break;
      case '\t':
        out += "&#9;";
        break;
      case '\r':
        out += "&#13;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

// prefix -> uri binding introduced at some element depth.
struct Binding {
  std::string prefix;
  std::string uri;
};

class Serializer {
 public:
  explicit Serializer(const SerializeOptions& options) : options_(options) {
    scope_.push_back({"xml", "http://www.w3.org/XML/1998/namespace"});
  }

  std::string Run(const Node& node) {
    if (node.kind() == NodeKind::kDocument && options_.xml_declaration) {
      out_ = "<?xml version=\"1.0\" encoding=\"utf-8\"?>";
      if (options_.indent) out_ += "\n";
    }
    Emit(node, 0);
    return std::move(out_);
  }

 private:
  // Returns the URI currently bound to `prefix`, or nullptr.
  const std::string* LookupPrefix(const std::string& prefix) const {
    for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
      if (it->prefix == prefix) return &it->uri;
    }
    return nullptr;
  }

  // Returns a prefix currently bound to `uri`, or nullptr. For attributes,
  // the empty (default) prefix is not usable.
  const std::string* LookupUri(const std::string& uri,
                               bool allow_default) const {
    for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
      if (it->uri == uri && (allow_default || !it->prefix.empty())) {
        // The binding must not be shadowed by a later one for same prefix.
        if (LookupPrefix(it->prefix) == &it->uri) return &it->prefix;
      }
    }
    return nullptr;
  }

  // Decides the prefix to serialize `name` with, appending any xmlns
  // declaration needed to `decls` and `scope_`.
  std::string PrefixFor(const QName& name, bool is_attribute,
                        std::vector<Binding>* decls) {
    if (name.ns_uri.empty()) {
      // No-namespace names must not pick up a default namespace binding.
      if (!is_attribute) {
        const std::string* bound = LookupPrefix("");
        if (bound != nullptr && !bound->empty()) {
          decls->push_back({"", ""});
          scope_.push_back({"", ""});
        }
      }
      return "";
    }
    const std::string* existing = LookupUri(name.ns_uri, !is_attribute);
    if (existing != nullptr) return *existing;
    // Try the stored prefix; fall back to generated ones.
    std::string prefix = name.prefix;
    if (prefix.empty() && is_attribute) prefix = "ns" + std::to_string(gen_++);
    while (true) {
      const std::string* bound = LookupPrefix(prefix);
      if (bound == nullptr || *bound == name.ns_uri) break;
      prefix = "ns" + std::to_string(gen_++);
    }
    decls->push_back({prefix, name.ns_uri});
    scope_.push_back({prefix, name.ns_uri});
    return prefix;
  }

  void Indent(int depth) {
    if (!options_.indent) return;
    if (!out_.empty() && out_.back() != '\n') out_ += "\n";
    out_.append(static_cast<size_t>(depth) * 2, ' ');
  }

  void Emit(const Node& node, int depth) {
    switch (node.kind()) {
      case NodeKind::kDocument:
        for (const NodePtr& c : node.children()) Emit(*c, depth);
        return;
      case NodeKind::kText:
        out_ += EscapeText(node.value());
        return;
      case NodeKind::kComment:
        Indent(depth);
        out_ += "<!--" + node.value() + "-->";
        return;
      case NodeKind::kProcessingInstruction:
        Indent(depth);
        out_ += "<?" + node.name().local +
                (node.value().empty() ? "" : " " + node.value()) + "?>";
        return;
      case NodeKind::kAttribute:
        // A detached attribute serialized on its own (the paper serializes
        // attribute parameters as <xrpc:attribute x="y"/> wrappers at the
        // SOAP layer; direct serialization renders name="value").
        out_ += node.name().Lexical() + "=\"" + EscapeAttribute(node.value()) +
                "\"";
        return;
      case NodeKind::kElement:
        break;
    }

    size_t scope_mark = scope_.size();
    std::vector<Binding> decls;
    std::string eprefix = PrefixFor(node.name(), false, &decls);

    struct AttrOut {
      std::string name;
      std::string value;
    };
    std::vector<AttrOut> attrs;
    for (const NodePtr& a : node.attributes()) {
      std::string aprefix = PrefixFor(a->name(), true, &decls);
      std::string aname =
          aprefix.empty() ? a->name().local : aprefix + ":" + a->name().local;
      attrs.push_back({std::move(aname), a->value()});
    }

    Indent(depth);
    out_ += "<";
    std::string tag =
        eprefix.empty() ? node.name().local : eprefix + ":" + node.name().local;
    out_ += tag;
    for (const Binding& d : decls) {
      out_ += d.prefix.empty() ? " xmlns" : " xmlns:" + d.prefix;
      out_ += "=\"" + EscapeAttribute(d.uri) + "\"";
    }
    for (const AttrOut& a : attrs) {
      out_ += " " + a.name + "=\"" + EscapeAttribute(a.value) + "\"";
    }

    if (node.children().empty()) {
      out_ += "/>";
    } else {
      out_ += ">";
      bool structural = true;
      for (const NodePtr& c : node.children()) {
        if (c->kind() == NodeKind::kText) structural = false;
      }
      for (const NodePtr& c : node.children()) {
        Emit(*c, structural ? depth + 1 : depth);
      }
      if (options_.indent && structural) Indent(depth);
      out_ += "</" + tag + ">";
    }
    scope_.resize(scope_mark);
  }

  SerializeOptions options_;
  std::string out_;
  std::vector<Binding> scope_;
  int gen_ = 1;
};

}  // namespace

std::string SerializeNode(const Node& node, const SerializeOptions& options) {
  Serializer s(options);
  return s.Run(node);
}

}  // namespace xrpc::xml
