#ifndef XRPC_XML_QNAME_H_
#define XRPC_XML_QNAME_H_

#include <string>
#include <tuple>

namespace xrpc::xml {

/// Well-known namespace URIs used by the SOAP XRPC protocol.
inline constexpr char kSoapEnvelopeNs[] =
    "http://www.w3.org/2003/05/soap-envelope";
inline constexpr char kXrpcNs[] = "http://monetdb.cwi.nl/XQuery";
inline constexpr char kXsNs[] = "http://www.w3.org/2001/XMLSchema";
inline constexpr char kXsiNs[] = "http://www.w3.org/2001/XMLSchema-instance";
inline constexpr char kXmlnsNs[] = "http://www.w3.org/2000/xmlns/";

/// Expanded XML name: namespace URI, local part, and the (non-semantic)
/// lexical prefix used for serialization.
///
/// Equality and ordering ignore the prefix, per XML Namespaces: two QNames
/// are the same name iff their URI and local part match.
struct QName {
  std::string ns_uri;
  std::string local;
  std::string prefix;

  QName() = default;
  explicit QName(std::string local_part) : local(std::move(local_part)) {}
  QName(std::string uri, std::string local_part)
      : ns_uri(std::move(uri)), local(std::move(local_part)) {}
  QName(std::string uri, std::string local_part, std::string pfx)
      : ns_uri(std::move(uri)),
        local(std::move(local_part)),
        prefix(std::move(pfx)) {}

  /// Lexical form "prefix:local" (or just "local").
  std::string Lexical() const {
    return prefix.empty() ? local : prefix + ":" + local;
  }

  /// Clark notation "{uri}local", unambiguous for diagnostics.
  std::string Clark() const {
    return ns_uri.empty() ? local : "{" + ns_uri + "}" + local;
  }

  bool empty() const { return local.empty(); }
};

inline bool operator==(const QName& a, const QName& b) {
  return a.ns_uri == b.ns_uri && a.local == b.local;
}
inline bool operator!=(const QName& a, const QName& b) { return !(a == b); }
inline bool operator<(const QName& a, const QName& b) {
  return std::tie(a.ns_uri, a.local) < std::tie(b.ns_uri, b.local);
}

}  // namespace xrpc::xml

#endif  // XRPC_XML_QNAME_H_
