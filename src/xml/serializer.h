#ifndef XRPC_XML_SERIALIZER_H_
#define XRPC_XML_SERIALIZER_H_

#include <string>
#include <string_view>

#include "xml/node.h"

namespace xrpc::xml {

/// Options controlling serialization.
struct SerializeOptions {
  /// Emit the <?xml version="1.0" encoding="utf-8"?> declaration before a
  /// document node.
  bool xml_declaration = false;
  /// Pretty-print with two-space indentation. Text content is emitted
  /// verbatim; only purely-structural element content is indented.
  bool indent = false;
};

/// Serializes a node (and its subtree) to XML text.
///
/// Namespace declarations are synthesized where a QName's URI is not bound
/// in the enclosing scope; prefixes stored on the QName are reused when
/// possible and fresh `nsN` prefixes are generated otherwise.
std::string SerializeNode(const Node& node, const SerializeOptions& options = {});

/// Escapes text content (&, <, >).
std::string EscapeText(std::string_view s);

/// Escapes an attribute value (&, <, ", and newlines/tabs as char refs).
std::string EscapeAttribute(std::string_view s);

}  // namespace xrpc::xml

#endif  // XRPC_XML_SERIALIZER_H_
