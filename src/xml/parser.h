#ifndef XRPC_XML_PARSER_H_
#define XRPC_XML_PARSER_H_

#include <string>
#include <string_view>

#include "base/statusor.h"
#include "xml/node.h"

namespace xrpc::xml {

/// Options controlling document parsing.
struct ParseOptions {
  /// Drop text nodes that consist only of whitespace and sit between
  /// element children ("ignorable whitespace"). The SOAP codec enables this
  /// for protocol framing elements; data content is never stripped because
  /// mixed content (text next to elements) is preserved.
  bool strip_ignorable_whitespace = false;
};

/// Non-validating, namespace-aware XML 1.0 parser.
///
/// Supported: prolog, comments, PIs, CDATA, character and predefined entity
/// references, namespace declarations (default and prefixed), DOCTYPE is
/// skipped without being processed. Returns the document node.
StatusOr<NodePtr> ParseXml(std::string_view input,
                           const ParseOptions& options = {});

/// Parses a string that may contain several sibling elements/text (an XML
/// fragment); returns a synthetic document node containing them.
StatusOr<NodePtr> ParseXmlFragment(std::string_view input,
                                   const ParseOptions& options = {});

}  // namespace xrpc::xml

#endif  // XRPC_XML_PARSER_H_
