#include "xml/node.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace xrpc::xml {

namespace {

uint64_t NextOrdinal() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

const char* NodeKindToString(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDocument:
      return "document";
    case NodeKind::kElement:
      return "element";
    case NodeKind::kAttribute:
      return "attribute";
    case NodeKind::kText:
      return "text";
    case NodeKind::kComment:
      return "comment";
    case NodeKind::kProcessingInstruction:
      return "processing-instruction";
  }
  return "unknown";
}

Node::Node(NodeKind kind) : kind_(kind), ordinal_(NextOrdinal()) {}

NodePtr Node::NewDocument() { return NodePtr(new Node(NodeKind::kDocument)); }

NodePtr Node::NewElement(QName name) {
  NodePtr n(new Node(NodeKind::kElement));
  n->name_ = std::move(name);
  return n;
}

NodePtr Node::NewAttribute(QName name, std::string value) {
  NodePtr n(new Node(NodeKind::kAttribute));
  n->name_ = std::move(name);
  n->value_ = std::move(value);
  return n;
}

NodePtr Node::NewText(std::string value) {
  NodePtr n(new Node(NodeKind::kText));
  n->value_ = std::move(value);
  return n;
}

NodePtr Node::NewComment(std::string value) {
  NodePtr n(new Node(NodeKind::kComment));
  n->value_ = std::move(value);
  return n;
}

NodePtr Node::NewProcessingInstruction(std::string target, std::string value) {
  NodePtr n(new Node(NodeKind::kProcessingInstruction));
  n->name_ = QName(std::move(target));
  n->value_ = std::move(value);
  return n;
}

void Node::AppendChild(NodePtr child) {
  assert(child != nullptr);
  assert(child->kind_ != NodeKind::kAttribute);
  BumpMutationStamp();
  child->parent_ = this;
  child->index_in_parent_ = children_.size();
  children_.push_back(std::move(child));
}

void Node::InsertBefore(NodePtr child, const Node* before) {
  assert(child != nullptr);
  BumpMutationStamp();
  child->parent_ = this;
  size_t pos = children_.size();
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].get() == before) {
      pos = i;
      break;
    }
  }
  children_.insert(children_.begin() + static_cast<ptrdiff_t>(pos),
                   std::move(child));
  for (size_t i = pos; i < children_.size(); ++i) {
    children_[i]->index_in_parent_ = i;
  }
}

void Node::SetAttribute(NodePtr attr) {
  assert(attr != nullptr && attr->kind_ == NodeKind::kAttribute);
  BumpMutationStamp();
  attr->parent_ = this;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i]->name_ == attr->name_) {
      attr->index_in_parent_ = i;
      attributes_[i] = std::move(attr);
      return;
    }
  }
  attr->index_in_parent_ = attributes_.size();
  attributes_.push_back(std::move(attr));
}

void Node::RemoveChild(const Node* child) {
  BumpMutationStamp();
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].get() == child) {
      children_.erase(children_.begin() + static_cast<ptrdiff_t>(i));
      for (size_t j = i; j < children_.size(); ++j) {
        children_[j]->index_in_parent_ = j;
      }
      return;
    }
  }
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].get() == child) {
      attributes_.erase(attributes_.begin() + static_cast<ptrdiff_t>(i));
      for (size_t j = i; j < attributes_.size(); ++j) {
        attributes_[j]->index_in_parent_ = j;
      }
      return;
    }
  }
}

const Node* Node::FindAttribute(const QName& name) const {
  for (const NodePtr& a : attributes_) {
    if (a->name_ == name) return a.get();
  }
  return nullptr;
}

void Node::AppendStringValue(std::string* out) const {
  switch (kind_) {
    case NodeKind::kText:
    case NodeKind::kAttribute:
    case NodeKind::kComment:
    case NodeKind::kProcessingInstruction:
      out->append(value_);
      return;
    case NodeKind::kDocument:
    case NodeKind::kElement:
      for (const NodePtr& c : children_) {
        if (c->kind_ == NodeKind::kText || c->kind_ == NodeKind::kElement ||
            c->kind_ == NodeKind::kDocument) {
          c->AppendStringValue(out);
        }
      }
      return;
  }
}

std::string Node::StringValue() const {
  std::string out;
  AppendStringValue(&out);
  return out;
}

Node* Node::Root() {
  Node* n = this;
  while (n->parent_ != nullptr) n = n->parent_;
  return n;
}

const Node* Node::Root() const {
  const Node* n = this;
  while (n->parent_ != nullptr) n = n->parent_;
  return n;
}

NodePtr Node::Clone() const {
  NodePtr copy(new Node(kind_));
  copy->name_ = name_;
  copy->value_ = value_;
  for (const NodePtr& a : attributes_) {
    copy->SetAttribute(a->Clone());
  }
  for (const NodePtr& c : children_) {
    copy->AppendChild(c->Clone());
  }
  return copy;
}

namespace {

// Builds the root-to-node ancestor chain (inclusive).
void AncestorChain(const Node* node, std::vector<const Node*>* chain) {
  chain->clear();
  for (const Node* n = node; n != nullptr; n = n->parent()) {
    chain->push_back(n);
  }
  std::reverse(chain->begin(), chain->end());
}

// Position key of `node` among the children of its parent: attributes sort
// before children (XDM: attributes follow the element but precede its
// children; we encode attribute-ness in the key).
struct SiblingKey {
  bool is_attribute;
  size_t index;
};

SiblingKey KeyOf(const Node* n) {
  return {n->kind() == NodeKind::kAttribute, n->IndexInParent()};
}

int CompareKeys(SiblingKey a, SiblingKey b) {
  if (a.is_attribute != b.is_attribute) return a.is_attribute ? -1 : 1;
  if (a.index != b.index) return a.index < b.index ? -1 : 1;
  return 0;
}

}  // namespace

int CompareDocumentOrder(const Node* a, const Node* b) {
  if (a == b) return 0;
  const Node* ra = a->Root();
  const Node* rb = b->Root();
  if (ra != rb) {
    return ra->ordinal() < rb->ordinal() ? -1 : 1;
  }
  std::vector<const Node*> ca, cb;
  AncestorChain(a, &ca);
  AncestorChain(b, &cb);
  size_t common = std::min(ca.size(), cb.size());
  size_t i = 0;
  while (i < common && ca[i] == cb[i]) ++i;
  if (i == ca.size()) return -1;  // a is an ancestor of b
  if (i == cb.size()) return 1;   // b is an ancestor of a
  return CompareKeys(KeyOf(ca[i]), KeyOf(cb[i]));
}

bool IsAncestorOf(const Node* ancestor, const Node* node) {
  for (const Node* n = node->parent(); n != nullptr; n = n->parent()) {
    if (n == ancestor) return true;
  }
  return false;
}

}  // namespace xrpc::xml
