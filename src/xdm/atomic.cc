#include "xdm/atomic.h"

#include <cmath>
#include <limits>

#include "base/string_util.h"

namespace xrpc::xdm {

const char* AtomicTypeName(AtomicType type) {
  switch (type) {
    case AtomicType::kUntypedAtomic:
      return "xs:untypedAtomic";
    case AtomicType::kString:
      return "xs:string";
    case AtomicType::kBoolean:
      return "xs:boolean";
    case AtomicType::kInteger:
      return "xs:integer";
    case AtomicType::kDecimal:
      return "xs:decimal";
    case AtomicType::kDouble:
      return "xs:double";
    case AtomicType::kQName:
      return "xs:QName";
    case AtomicType::kDate:
      return "xs:date";
    case AtomicType::kDateTime:
      return "xs:dateTime";
    case AtomicType::kAnyUri:
      return "xs:anyURI";
  }
  return "xs:string";
}

StatusOr<AtomicType> AtomicTypeFromName(std::string_view name) {
  std::string_view n = name;
  if (StartsWith(n, "xs:")) n = n.substr(3);
  if (n == "untypedAtomic") return AtomicType::kUntypedAtomic;
  if (n == "string") return AtomicType::kString;
  if (n == "boolean") return AtomicType::kBoolean;
  if (n == "integer" || n == "int" || n == "long" || n == "short" ||
      n == "byte" || n == "nonNegativeInteger" || n == "positiveInteger" ||
      n == "unsignedInt" || n == "unsignedLong") {
    return AtomicType::kInteger;
  }
  if (n == "decimal") return AtomicType::kDecimal;
  if (n == "double" || n == "float") return AtomicType::kDouble;
  if (n == "QName") return AtomicType::kQName;
  if (n == "date") return AtomicType::kDate;
  if (n == "dateTime") return AtomicType::kDateTime;
  if (n == "anyURI") return AtomicType::kAnyUri;
  return Status::TypeError("unknown atomic type: " + std::string(name));
}

bool IsNumericType(AtomicType type) {
  return type == AtomicType::kInteger || type == AtomicType::kDecimal ||
         type == AtomicType::kDouble;
}

AtomicValue AtomicValue::Untyped(std::string v) {
  AtomicValue a;
  a.type_ = AtomicType::kUntypedAtomic;
  a.value_ = std::move(v);
  return a;
}

AtomicValue AtomicValue::String(std::string v) {
  AtomicValue a;
  a.type_ = AtomicType::kString;
  a.value_ = std::move(v);
  return a;
}

AtomicValue AtomicValue::Boolean(bool v) {
  AtomicValue a;
  a.type_ = AtomicType::kBoolean;
  a.value_ = v;
  return a;
}

AtomicValue AtomicValue::Integer(int64_t v) {
  AtomicValue a;
  a.type_ = AtomicType::kInteger;
  a.value_ = v;
  return a;
}

AtomicValue AtomicValue::Decimal(double v) {
  AtomicValue a;
  a.type_ = AtomicType::kDecimal;
  a.value_ = v;
  return a;
}

AtomicValue AtomicValue::Double(double v) {
  AtomicValue a;
  a.type_ = AtomicType::kDouble;
  a.value_ = v;
  return a;
}

AtomicValue AtomicValue::QNameValue(std::string lexical) {
  AtomicValue a;
  a.type_ = AtomicType::kQName;
  a.value_ = std::move(lexical);
  return a;
}

AtomicValue AtomicValue::Date(std::string lexical) {
  AtomicValue a;
  a.type_ = AtomicType::kDate;
  a.value_ = std::move(lexical);
  return a;
}

AtomicValue AtomicValue::DateTime(std::string lexical) {
  AtomicValue a;
  a.type_ = AtomicType::kDateTime;
  a.value_ = std::move(lexical);
  return a;
}

AtomicValue AtomicValue::AnyUri(std::string v) {
  AtomicValue a;
  a.type_ = AtomicType::kAnyUri;
  a.value_ = std::move(v);
  return a;
}

std::string AtomicValue::ToString() const {
  switch (type_) {
    case AtomicType::kBoolean:
      return std::get<bool>(value_) ? "true" : "false";
    case AtomicType::kInteger:
      return std::to_string(std::get<int64_t>(value_));
    case AtomicType::kDecimal:
    case AtomicType::kDouble:
      return FormatDouble(std::get<double>(value_));
    default:
      return std::get<std::string>(value_);
  }
}

double AtomicValue::AsDouble() const {
  switch (type_) {
    case AtomicType::kInteger:
      return static_cast<double>(std::get<int64_t>(value_));
    case AtomicType::kDecimal:
    case AtomicType::kDouble:
      return std::get<double>(value_);
    case AtomicType::kBoolean:
      return std::get<bool>(value_) ? 1.0 : 0.0;
    default: {
      auto parsed = ParseDouble(std::get<std::string>(value_));
      return parsed.ok() ? parsed.value()
                         : std::numeric_limits<double>::quiet_NaN();
    }
  }
}

int64_t AtomicValue::AsInteger() const {
  switch (type_) {
    case AtomicType::kInteger:
      return std::get<int64_t>(value_);
    case AtomicType::kDecimal:
    case AtomicType::kDouble:
      return static_cast<int64_t>(std::get<double>(value_));
    case AtomicType::kBoolean:
      return std::get<bool>(value_) ? 1 : 0;
    default: {
      auto parsed = ParseInt64(std::get<std::string>(value_));
      return parsed.ok() ? parsed.value() : 0;
    }
  }
}

bool AtomicValue::AsBoolean() const {
  if (type_ == AtomicType::kBoolean) return std::get<bool>(value_);
  return false;
}

StatusOr<AtomicValue> AtomicValue::CastTo(AtomicType target) const {
  if (target == type_) return *this;
  const std::string lex = ToString();
  switch (target) {
    case AtomicType::kString:
      return String(lex);
    case AtomicType::kUntypedAtomic:
      return Untyped(lex);
    case AtomicType::kAnyUri:
      return AnyUri(std::string(TrimWhitespace(lex)));
    case AtomicType::kBoolean: {
      if (IsNumeric()) {
        double d = AsDouble();
        return Boolean(d != 0 && !std::isnan(d));
      }
      std::string_view t = TrimWhitespace(lex);
      if (t == "true" || t == "1") return Boolean(true);
      if (t == "false" || t == "0") return Boolean(false);
      return Status::TypeError("cannot cast '" + lex + "' to xs:boolean");
    }
    case AtomicType::kInteger: {
      if (type_ == AtomicType::kDouble || type_ == AtomicType::kDecimal) {
        double d = std::get<double>(value_);
        if (std::isnan(d) || std::isinf(d)) {
          return Status::TypeError("cannot cast non-finite value to integer");
        }
        return Integer(static_cast<int64_t>(std::trunc(d)));
      }
      if (type_ == AtomicType::kBoolean) {
        return Integer(std::get<bool>(value_) ? 1 : 0);
      }
      auto parsed = ParseInt64(lex);
      if (!parsed.ok()) {
        return Status::TypeError("cannot cast '" + lex + "' to xs:integer");
      }
      return Integer(parsed.value());
    }
    case AtomicType::kDecimal:
    case AtomicType::kDouble: {
      if (type_ == AtomicType::kBoolean) {
        double d = std::get<bool>(value_) ? 1.0 : 0.0;
        return target == AtomicType::kDouble ? Double(d) : Decimal(d);
      }
      if (IsNumeric()) {
        double d = AsDouble();
        return target == AtomicType::kDouble ? Double(d) : Decimal(d);
      }
      auto parsed = ParseDouble(lex);
      if (!parsed.ok()) {
        return Status::TypeError("cannot cast '" + lex + "' to " +
                                 std::string(AtomicTypeName(target)));
      }
      return target == AtomicType::kDouble ? Double(parsed.value())
                                           : Decimal(parsed.value());
    }
    case AtomicType::kQName:
      if (type_ == AtomicType::kString || type_ == AtomicType::kUntypedAtomic) {
        return QNameValue(std::string(TrimWhitespace(lex)));
      }
      return Status::TypeError("cannot cast to xs:QName");
    case AtomicType::kDate:
      if (type_ == AtomicType::kString || type_ == AtomicType::kUntypedAtomic) {
        return Date(std::string(TrimWhitespace(lex)));
      }
      return Status::TypeError("cannot cast to xs:date");
    case AtomicType::kDateTime:
      if (type_ == AtomicType::kString || type_ == AtomicType::kUntypedAtomic) {
        return DateTime(std::string(TrimWhitespace(lex)));
      }
      return Status::TypeError("cannot cast to xs:dateTime");
  }
  return Status::TypeError("unsupported cast");
}

bool operator==(const AtomicValue& a, const AtomicValue& b) {
  if (a.type_ != b.type_) return false;
  return a.value_ == b.value_;
}

namespace {

int CompareDoubles(double x, double y) {
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

int CompareStrings(const std::string& x, const std::string& y) {
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

}  // namespace

StatusOr<int> CompareAtomic(const AtomicValue& a, const AtomicValue& b) {
  AtomicType ta = a.type();
  AtomicType tb = b.type();

  // untypedAtomic adapts to the other operand.
  if (ta == AtomicType::kUntypedAtomic && tb == AtomicType::kUntypedAtomic) {
    return CompareStrings(a.ToString(), b.ToString());
  }
  if (ta == AtomicType::kUntypedAtomic) {
    AtomicType as = IsNumericType(tb) ? AtomicType::kDouble : tb;
    XRPC_ASSIGN_OR_RETURN(AtomicValue ca, a.CastTo(as));
    return CompareAtomic(ca, b);
  }
  if (tb == AtomicType::kUntypedAtomic) {
    AtomicType as = IsNumericType(ta) ? AtomicType::kDouble : ta;
    XRPC_ASSIGN_OR_RETURN(AtomicValue cb, b.CastTo(as));
    return CompareAtomic(a, cb);
  }

  if (IsNumericType(ta) && IsNumericType(tb)) {
    if (ta == AtomicType::kInteger && tb == AtomicType::kInteger) {
      int64_t x = a.AsInteger(), y = b.AsInteger();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    return CompareDoubles(a.AsDouble(), b.AsDouble());
  }

  auto string_like = [](AtomicType t) {
    return t == AtomicType::kString || t == AtomicType::kAnyUri;
  };
  if (string_like(ta) && string_like(tb)) {
    return CompareStrings(a.ToString(), b.ToString());
  }

  if (ta != tb) {
    return Status::TypeError(std::string("cannot compare ") +
                             AtomicTypeName(ta) + " with " +
                             AtomicTypeName(tb));
  }
  switch (ta) {
    case AtomicType::kBoolean: {
      int x = a.AsBoolean() ? 1 : 0, y = b.AsBoolean() ? 1 : 0;
      return x - y;
    }
    case AtomicType::kDate:
    case AtomicType::kDateTime:
    case AtomicType::kQName:
      return CompareStrings(a.ToString(), b.ToString());
    default:
      return Status::TypeError(std::string("cannot compare values of type ") +
                               AtomicTypeName(ta));
  }
}

}  // namespace xrpc::xdm
