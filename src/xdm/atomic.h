#ifndef XRPC_XDM_ATOMIC_H_
#define XRPC_XDM_ATOMIC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "base/statusor.h"

namespace xrpc::xdm {

/// The atomic types of the XQuery Data Model subset XRPC marshals.
///
/// Decimals are represented as doubles (sufficient for the paper's
/// workloads; documented restriction). Dates/times keep their lexical form
/// and compare lexically, which is correct for valid canonical values.
enum class AtomicType {
  kUntypedAtomic,
  kString,
  kBoolean,
  kInteger,
  kDecimal,
  kDouble,
  kQName,
  kDate,
  kDateTime,
  kAnyUri,
};

/// XML Schema name ("xs:integer") for a type, as used in xsi:type.
const char* AtomicTypeName(AtomicType type);

/// Parses an "xs:NNN" (or bare "NNN") schema type name.
StatusOr<AtomicType> AtomicTypeFromName(std::string_view name);

/// True for integer/decimal/double.
bool IsNumericType(AtomicType type);

/// An atomic value: a typed XDM scalar.
///
/// Value semantics; cheap to copy for non-string payloads.
class AtomicValue {
 public:
  /// Default: empty xs:string.
  AtomicValue() : type_(AtomicType::kString), value_(std::string()) {}

  static AtomicValue Untyped(std::string v);
  static AtomicValue String(std::string v);
  static AtomicValue Boolean(bool v);
  static AtomicValue Integer(int64_t v);
  static AtomicValue Decimal(double v);
  static AtomicValue Double(double v);
  static AtomicValue QNameValue(std::string lexical);
  static AtomicValue Date(std::string lexical);
  static AtomicValue DateTime(std::string lexical);
  static AtomicValue AnyUri(std::string v);

  AtomicType type() const { return type_; }

  /// Lexical (string) form of the value, XQuery serialization rules.
  std::string ToString() const;

  /// Casts to the target type; error on invalid lexical form or
  /// unsupported cast (XPTY0004-style).
  StatusOr<AtomicValue> CastTo(AtomicType target) const;

  /// Numeric value for numeric types (integer widened to double).
  double AsDouble() const;
  int64_t AsInteger() const;
  bool AsBoolean() const;

  bool IsNumeric() const { return IsNumericType(type_); }

  /// Deep equality: same type and same value (used by tests; query-level
  /// comparison goes through CompareAtomic).
  friend bool operator==(const AtomicValue& a, const AtomicValue& b);

 private:
  AtomicType type_;
  std::variant<std::string, bool, int64_t, double> value_;
};

/// Three-way comparison following XQuery value-comparison semantics after
/// type promotion:
///  - untypedAtomic is compared as string with strings, as double with
///    numerics, and cast for the remaining types;
///  - numeric types promote to the wider of the two;
///  - strings/URIs compare by codepoint; booleans false<true;
///  - date/dateTime compare lexically (valid canonical lexical forms order
///    correctly).
/// Returns -1/0/1, or error for incomparable types (XPTY0004).
StatusOr<int> CompareAtomic(const AtomicValue& a, const AtomicValue& b);

}  // namespace xrpc::xdm

#endif  // XRPC_XDM_ATOMIC_H_
