#include "xdm/item.h"

#include <algorithm>
#include <cmath>

#include "xml/serializer.h"

namespace xrpc::xdm {

Item Item::Node(xml::NodePtr node) {
  Item item;
  item.node_ = node.get();
  item.anchor_ = node->RootPtr();
  return item;
}

Item Item::NodeInTree(xml::Node* node, xml::NodePtr anchor) {
  Item item;
  item.node_ = node;
  item.anchor_ = std::move(anchor);
  return item;
}

AtomicValue Item::Atomize() const {
  if (IsAtomic()) return atomic_;
  return AtomicValue::Untyped(node_->StringValue());
}

std::string Item::StringValue() const {
  if (IsAtomic()) return atomic_.ToString();
  return node_->StringValue();
}

Sequence SingletonInt(int64_t v) { return {Item(AtomicValue::Integer(v))}; }
Sequence SingletonString(std::string v) {
  return {Item(AtomicValue::String(std::move(v)))};
}
Sequence SingletonBool(bool v) { return {Item(AtomicValue::Boolean(v))}; }
Sequence SingletonDouble(double v) { return {Item(AtomicValue::Double(v))}; }

StatusOr<bool> EffectiveBooleanValue(const Sequence& seq) {
  if (seq.empty()) return false;
  if (seq[0].IsNode()) return true;
  if (seq.size() > 1) {
    return Status::TypeError(
        "effective boolean value of a multi-item atomic sequence (FORG0006)");
  }
  const AtomicValue& v = seq[0].atomic();
  switch (v.type()) {
    case AtomicType::kBoolean:
      return v.AsBoolean();
    case AtomicType::kString:
    case AtomicType::kUntypedAtomic:
    case AtomicType::kAnyUri:
      return !v.ToString().empty();
    case AtomicType::kInteger:
      return v.AsInteger() != 0;
    case AtomicType::kDecimal:
    case AtomicType::kDouble: {
      double d = v.AsDouble();
      return d != 0 && !std::isnan(d);
    }
    default:
      return Status::TypeError(
          "effective boolean value undefined for this type (FORG0006)");
  }
}

std::vector<AtomicValue> AtomizeSequence(const Sequence& seq) {
  std::vector<AtomicValue> out;
  out.reserve(seq.size());
  for (const Item& item : seq) out.push_back(item.Atomize());
  return out;
}

Status SortByDocumentOrder(Sequence* seq) {
  for (const Item& item : *seq) {
    if (!item.IsNode()) {
      return Status::TypeError(
          "path step result contains an atomic value (XPTY0018)");
    }
  }
  std::stable_sort(seq->begin(), seq->end(), [](const Item& a, const Item& b) {
    return xml::CompareDocumentOrder(a.node(), b.node()) < 0;
  });
  seq->erase(std::unique(seq->begin(), seq->end(),
                         [](const Item& a, const Item& b) {
                           return a.node() == b.node();
                         }),
             seq->end());
  return Status::OK();
}

std::string SequenceToString(const Sequence& seq) {
  std::string out;
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) out += " ";
    const Item& item = seq[i];
    if (item.IsNode()) {
      out += xml::SerializeNode(*item.node());
    } else {
      out += item.atomic().ToString();
    }
  }
  return out;
}

}  // namespace xrpc::xdm
