#ifndef XRPC_XDM_ITEM_H_
#define XRPC_XDM_ITEM_H_

#include <string>
#include <vector>

#include "base/statusor.h"
#include "xdm/atomic.h"
#include "xml/node.h"

namespace xrpc::xdm {

/// One XDM item: either an atomic value or a node.
///
/// Node items carry an `anchor`: an owning pointer to the node's tree root.
/// The anchor keeps the whole tree alive while any of its nodes is
/// referenced from a sequence, which makes parent navigation from freshly
/// constructed trees safe. Navigation helpers propagate the anchor.
class Item {
 public:
  /// Default: the atomic empty string (useful as a placeholder member).
  Item() = default;

  /// Constructs an atomic item.
  explicit Item(AtomicValue value) : atomic_(std::move(value)) {}

  /// Constructs a node item; the anchor defaults to the node's root.
  static Item Node(xml::NodePtr node);
  /// Constructs a node item referring to `node` inside the tree owned by
  /// `anchor` (node must be in anchor's tree).
  static Item NodeInTree(xml::Node* node, xml::NodePtr anchor);

  bool IsNode() const { return node_ != nullptr; }
  bool IsAtomic() const { return node_ == nullptr; }

  const AtomicValue& atomic() const { return atomic_; }
  xml::Node* node() const { return node_; }
  const xml::NodePtr& anchor() const { return anchor_; }

  /// Typed value: atomic items yield themselves; nodes atomize to
  /// untypedAtomic of their string value (we operate on untyped documents,
  /// matching the paper's setting).
  AtomicValue Atomize() const;

  /// String value (fn:string of a single item).
  std::string StringValue() const;

 private:
  AtomicValue atomic_;
  xml::Node* node_ = nullptr;
  xml::NodePtr anchor_;
};

/// An XDM sequence: a flat, ordered list of items. The empty vector is the
/// empty sequence (); a single item and the singleton sequence coincide.
using Sequence = std::vector<Item>;

/// Convenience constructors.
Sequence SingletonInt(int64_t v);
Sequence SingletonString(std::string v);
Sequence SingletonBool(bool v);
Sequence SingletonDouble(double v);

/// Effective boolean value per XQuery: () is false, a first-item node makes
/// it true, singleton boolean/number/string follow their rules, other
/// sequences are a type error (FORG0006).
StatusOr<bool> EffectiveBooleanValue(const Sequence& seq);

/// Atomizes every item of the sequence.
std::vector<AtomicValue> AtomizeSequence(const Sequence& seq);

/// Sorts node items into document order and removes duplicate identities.
/// Error if the sequence mixes nodes and atomics (path step result rule).
Status SortByDocumentOrder(Sequence* seq);

/// Human-readable rendering used in tests/examples: atomic lexical forms
/// and serialized nodes, space-separated.
std::string SequenceToString(const Sequence& seq);

}  // namespace xrpc::xdm

#endif  // XRPC_XDM_ITEM_H_
