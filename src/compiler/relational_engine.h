#ifndef XRPC_COMPILER_RELATIONAL_ENGINE_H_
#define XRPC_COMPILER_RELATIONAL_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "compiler/loop_lift.h"
#include "net/thread_pool.h"
#include "server/engine.h"
#include "server/module_registry.h"
#include "shred/shredded_doc.h"

namespace xrpc::compiler {

/// The MonetDB/XQuery-style execution engine: serves XRPC requests through
/// the loop-lifted relational evaluator, executing ALL calls of a Bulk RPC
/// request in one set-oriented pass (the request's calls become the loop
/// relation, Section 3.2).
///
/// The function cache (Section 3.3) is the prepared-plan cache: with the
/// cache ON, the pre-parsed module from the registry is reused and a
/// request needs no query translation; with the cache OFF, the module
/// source is re-parsed on every request, modeling the 130 ms translation
/// overhead column of Table 2.
///
/// Updating requests and queries outside the relational subset fall back
/// to the interpreter (counted in `interpreter_fallbacks`), mirroring
/// MonetDB's separate update path.
class RelationalEngine : public server::ExecutionEngine {
 public:
  struct Options {
    bool use_function_cache = true;
    /// Required when use_function_cache is false (source of truth for
    /// recompilation).
    server::ModuleRegistry* registry = nullptr;
    /// Worker count of the morsel-parallel executor (DESIGN.md §15).
    /// <= 1 keeps evaluation serial. The engine owns one pool shared by
    /// every request it serves; per-request evaluators borrow it.
    int exec_threads = 1;
  };

  RelationalEngine() = default;
  explicit RelationalEngine(const Options& options) : options_(options) {
    if (options_.exec_threads > 1) {
      exec_pool_ = std::make_unique<net::ThreadPool>(
          static_cast<size_t>(options_.exec_threads));
    }
  }

  std::string name() const override {
    return options_.use_function_cache ? "relational" : "relational-nocache";
  }

  StatusOr<std::vector<xdm::Sequence>> ExecuteRequest(
      const soap::XrpcRequest& request, const server::CallContext& context,
      xquery::PendingUpdateList* pul) override;

  /// Enables morsel-parallel execution after construction (convenience
  /// for network/test setup). Not thread-safe against in-flight requests:
  /// call before the engine starts serving.
  void EnableParallelExec(int threads) {
    if (threads <= 1) {
      options_.exec_threads = 1;
      exec_pool_.reset();
      return;
    }
    options_.exec_threads = threads;
    exec_pool_ = std::make_unique<net::ThreadPool>(
        static_cast<size_t>(threads));
  }

  int64_t bulk_requests() const { return bulk_requests_.load(); }
  int64_t interpreter_fallbacks() const {
    return interpreter_fallbacks_.load();
  }
  shred::ShredCache& shred_cache() { return shreds_; }

 private:
  StatusOr<std::vector<xdm::Sequence>> ExecuteRelational(
      const soap::XrpcRequest& request, const server::CallContext& context,
      const xquery::LibraryModule& module, const xquery::FunctionDef& def);

  Options options_;
  shred::ShredCache shreds_;
  /// Morsel-executor workers, shared across requests (null when serial).
  std::unique_ptr<net::ThreadPool> exec_pool_;
  // One engine serves concurrent HTTP workers, so these counters are
  // atomics — a plain ++ here is a data race under load (TSan-verified).
  std::atomic<int64_t> bulk_requests_{0};
  std::atomic<int64_t> interpreter_fallbacks_{0};
};

}  // namespace xrpc::compiler

#endif  // XRPC_COMPILER_RELATIONAL_ENGINE_H_
