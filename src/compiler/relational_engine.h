#ifndef XRPC_COMPILER_RELATIONAL_ENGINE_H_
#define XRPC_COMPILER_RELATIONAL_ENGINE_H_

#include <cstdint>
#include <string>

#include "compiler/loop_lift.h"
#include "server/engine.h"
#include "server/module_registry.h"
#include "shred/shredded_doc.h"

namespace xrpc::compiler {

/// The MonetDB/XQuery-style execution engine: serves XRPC requests through
/// the loop-lifted relational evaluator, executing ALL calls of a Bulk RPC
/// request in one set-oriented pass (the request's calls become the loop
/// relation, Section 3.2).
///
/// The function cache (Section 3.3) is the prepared-plan cache: with the
/// cache ON, the pre-parsed module from the registry is reused and a
/// request needs no query translation; with the cache OFF, the module
/// source is re-parsed on every request, modeling the 130 ms translation
/// overhead column of Table 2.
///
/// Updating requests and queries outside the relational subset fall back
/// to the interpreter (counted in `interpreter_fallbacks`), mirroring
/// MonetDB's separate update path.
class RelationalEngine : public server::ExecutionEngine {
 public:
  struct Options {
    bool use_function_cache = true;
    /// Required when use_function_cache is false (source of truth for
    /// recompilation).
    server::ModuleRegistry* registry = nullptr;
  };

  RelationalEngine() = default;
  explicit RelationalEngine(const Options& options) : options_(options) {}

  std::string name() const override {
    return options_.use_function_cache ? "relational" : "relational-nocache";
  }

  StatusOr<std::vector<xdm::Sequence>> ExecuteRequest(
      const soap::XrpcRequest& request, const server::CallContext& context,
      xquery::PendingUpdateList* pul) override;

  int64_t bulk_requests() const { return bulk_requests_; }
  int64_t interpreter_fallbacks() const { return interpreter_fallbacks_; }
  shred::ShredCache& shred_cache() { return shreds_; }

 private:
  StatusOr<std::vector<xdm::Sequence>> ExecuteRelational(
      const soap::XrpcRequest& request, const server::CallContext& context,
      const xquery::LibraryModule& module, const xquery::FunctionDef& def);

  Options options_;
  shred::ShredCache shreds_;
  int64_t bulk_requests_ = 0;
  int64_t interpreter_fallbacks_ = 0;
};

}  // namespace xrpc::compiler

#endif  // XRPC_COMPILER_RELATIONAL_ENGINE_H_
