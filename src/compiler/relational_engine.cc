#include "compiler/relational_engine.h"

#include "algebra/morsel.h"
#include "compiler/morsel_exec.h"
#include "xquery/parser.h"

namespace xrpc::compiler {

StatusOr<std::vector<xdm::Sequence>> RelationalEngine::ExecuteRequest(
    const soap::XrpcRequest& request, const server::CallContext& context,
    xquery::PendingUpdateList* pul) {
  ++bulk_requests_;

  // Updates run on the separate update path (the interpreter), exactly as
  // MonetDB/XQuery routes XQUF updates outside the loop-lifted plans.
  if (request.updating) {
    ++interpreter_fallbacks_;
    server::InterpreterEngine fallback;
    return fallback.ExecuteRequest(request, context, pul);
  }

  const xquery::LibraryModule* module = nullptr;
  xquery::LibraryModule reparsed;
  if (options_.use_function_cache) {
    if (context.modules == nullptr) {
      return Status::Internal("no module resolver configured");
    }
    XRPC_ASSIGN_OR_RETURN(
        module, context.modules->Resolve(request.module_ns, request.location));
  } else {
    if (options_.registry == nullptr) {
      return Status::Internal("cache-less mode requires a registry");
    }
    XRPC_ASSIGN_OR_RETURN(const std::string* source,
                          options_.registry->SourceOf(request.module_ns));
    XRPC_ASSIGN_OR_RETURN(reparsed, xquery::ParseLibraryModule(*source));
    module = &reparsed;
  }

  const xquery::FunctionDef* def = nullptr;
  for (const xquery::FunctionDef& f : module->prolog.functions) {
    if (f.name.local == request.method && f.arity() == request.arity) {
      def = &f;
      break;
    }
  }
  if (def == nullptr) {
    return Status::NotFound("function " + request.method + "#" +
                            std::to_string(request.arity) +
                            " not found in module " + request.module_ns);
  }

  auto relational = ExecuteRelational(request, context, *module, *def);
  if (relational.ok() ||
      relational.status().code() != StatusCode::kUnsupported) {
    return relational;
  }
  // Outside the relational subset: interpret instead.
  ++interpreter_fallbacks_;
  server::InterpreterEngine::Options iopts;
  iopts.reparse_per_request = !options_.use_function_cache;
  iopts.registry = options_.registry;
  server::InterpreterEngine fallback(iopts);
  return fallback.ExecuteRequest(request, context, pul);
}

StatusOr<std::vector<xdm::Sequence>> RelationalEngine::ExecuteRelational(
    const soap::XrpcRequest& request, const server::CallContext& context,
    const xquery::LibraryModule& module, const xquery::FunctionDef& def) {
  // Shred the request parameters into loop-lifted tables: call i becomes
  // iteration i+1. Calls are independent, so chunks of calls are morsel
  // work ("shred" in the exec metrics); the per-chunk tables concatenate
  // in call order, identical to the serial append.
  int64_t num_calls = static_cast<int64_t>(request.calls.size());
  std::vector<algebra::Table> args(request.arity,
                                   algebra::Table::IterPosItem());
  auto shred_calls = [&](size_t begin, size_t end,
                         std::vector<algebra::Table>* out) -> Status {
    PollGate gate(context.cancel);
    for (size_t call = begin; call < end; ++call) {
      if (gate.Tick()) return gate.status();
      const std::vector<xdm::Sequence>& params = request.calls[call];
      for (size_t p = 0; p < request.arity; ++p) {
        const xdm::Sequence& param = params[p];
        for (size_t k = 0; k < param.size(); ++k) {
          (*out)[p].AppendIPI(static_cast<int64_t>(call + 1),
                              static_cast<int64_t>(k + 1), param[k]);
        }
      }
    }
    return Status::OK();
  };
  MorselExecutor shred_exec(exec_pool_.get(), context.cancel,
                            context.metrics);
  constexpr size_t kShredMorselCalls = 64;
  auto morsels = algebra::SplitRows(request.calls.size(), kShredMorselCalls);
  if (shred_exec.parallel_capable() && morsels.size() > 1) {
    std::vector<std::vector<algebra::Table>> parts(
        morsels.size(), std::vector<algebra::Table>(
                            request.arity, algebra::Table::IterPosItem()));
    XRPC_RETURN_IF_ERROR(
        shred_exec.Run("shred", morsels.size(), [&](size_t m) {
          return shred_calls(morsels[m].begin, morsels[m].end, &parts[m]);
        }));
    for (auto& part : parts) {
      for (size_t p = 0; p < request.arity; ++p) {
        args[p].AppendRowsFrom(std::move(part[p]));
      }
    }
  } else {
    XRPC_RETURN_IF_ERROR(shred_calls(0, request.calls.size(), &args));
  }

  LoopLiftConfig config;
  config.documents = context.documents;
  config.modules = context.modules;
  config.rpc = context.bulk_rpc;
  config.shreds = &shreds_;
  config.cancel = context.cancel;
  config.exec_threads = options_.exec_threads;
  config.exec_pool = exec_pool_.get();
  config.metrics = context.metrics;
  LoopLiftedEvaluator evaluator(config);
  XRPC_ASSIGN_OR_RETURN(
      algebra::Table result,
      evaluator.EvaluateFunctionBulk(module, def, args, num_calls));

  std::vector<xdm::Sequence> out(static_cast<size_t>(num_calls));
  for (size_t i = 0; i < result.NumRows(); ++i) {
    int64_t iter = result.Iter(i);
    if (iter < 1 || iter > num_calls) {
      return Status::Internal("bulk result iteration out of range");
    }
    out[static_cast<size_t>(iter - 1)].push_back(result.ItemAt(i));
  }
  return out;
}

}  // namespace xrpc::compiler
