#include "compiler/relational_engine.h"

#include "xquery/parser.h"

namespace xrpc::compiler {

StatusOr<std::vector<xdm::Sequence>> RelationalEngine::ExecuteRequest(
    const soap::XrpcRequest& request, const server::CallContext& context,
    xquery::PendingUpdateList* pul) {
  ++bulk_requests_;

  // Updates run on the separate update path (the interpreter), exactly as
  // MonetDB/XQuery routes XQUF updates outside the loop-lifted plans.
  if (request.updating) {
    ++interpreter_fallbacks_;
    server::InterpreterEngine fallback;
    return fallback.ExecuteRequest(request, context, pul);
  }

  const xquery::LibraryModule* module = nullptr;
  xquery::LibraryModule reparsed;
  if (options_.use_function_cache) {
    if (context.modules == nullptr) {
      return Status::Internal("no module resolver configured");
    }
    XRPC_ASSIGN_OR_RETURN(
        module, context.modules->Resolve(request.module_ns, request.location));
  } else {
    if (options_.registry == nullptr) {
      return Status::Internal("cache-less mode requires a registry");
    }
    XRPC_ASSIGN_OR_RETURN(const std::string* source,
                          options_.registry->SourceOf(request.module_ns));
    XRPC_ASSIGN_OR_RETURN(reparsed, xquery::ParseLibraryModule(*source));
    module = &reparsed;
  }

  const xquery::FunctionDef* def = nullptr;
  for (const xquery::FunctionDef& f : module->prolog.functions) {
    if (f.name.local == request.method && f.arity() == request.arity) {
      def = &f;
      break;
    }
  }
  if (def == nullptr) {
    return Status::NotFound("function " + request.method + "#" +
                            std::to_string(request.arity) +
                            " not found in module " + request.module_ns);
  }

  auto relational = ExecuteRelational(request, context, *module, *def);
  if (relational.ok() ||
      relational.status().code() != StatusCode::kUnsupported) {
    return relational;
  }
  // Outside the relational subset: interpret instead.
  ++interpreter_fallbacks_;
  server::InterpreterEngine::Options iopts;
  iopts.reparse_per_request = !options_.use_function_cache;
  iopts.registry = options_.registry;
  server::InterpreterEngine fallback(iopts);
  return fallback.ExecuteRequest(request, context, pul);
}

StatusOr<std::vector<xdm::Sequence>> RelationalEngine::ExecuteRelational(
    const soap::XrpcRequest& request, const server::CallContext& context,
    const xquery::LibraryModule& module, const xquery::FunctionDef& def) {
  // Shred the request parameters into loop-lifted tables: call i becomes
  // iteration i+1.
  int64_t num_calls = static_cast<int64_t>(request.calls.size());
  std::vector<algebra::Table> args(request.arity,
                                   algebra::Table::IterPosItem());
  for (int64_t call = 0; call < num_calls; ++call) {
    const std::vector<xdm::Sequence>& params =
        request.calls[static_cast<size_t>(call)];
    for (size_t p = 0; p < request.arity; ++p) {
      const xdm::Sequence& param = params[p];
      for (size_t k = 0; k < param.size(); ++k) {
        args[p].AppendIPI(call + 1, static_cast<int64_t>(k + 1), param[k]);
      }
    }
  }

  LoopLiftConfig config;
  config.documents = context.documents;
  config.modules = context.modules;
  config.rpc = context.bulk_rpc;
  config.shreds = &shreds_;
  config.cancel = context.cancel;
  LoopLiftedEvaluator evaluator(config);
  XRPC_ASSIGN_OR_RETURN(
      algebra::Table result,
      evaluator.EvaluateFunctionBulk(module, def, args, num_calls));

  std::vector<xdm::Sequence> out(static_cast<size_t>(num_calls));
  for (size_t i = 0; i < result.NumRows(); ++i) {
    int64_t iter = result.Iter(i);
    if (iter < 1 || iter > num_calls) {
      return Status::Internal("bulk result iteration out of range");
    }
    out[static_cast<size_t>(iter - 1)].push_back(result.ItemAt(i));
  }
  return out;
}

}  // namespace xrpc::compiler
