#include "compiler/morsel_exec.h"

#include <exception>
#include <string>

#include "base/clock.h"

namespace xrpc::compiler {

Status MorselExecutor::Run(const char* op, size_t num_morsels,
                           const std::function<Status(size_t)>& body) {
  if (num_morsels == 0) return Status::OK();
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return cancel_->CheckCancelled();
  }

  const bool go_parallel = parallel_capable() && num_morsels > 1;
  StopWatch wall;
  std::vector<int64_t> morsel_us(num_morsels, 0);
  Status result = Status::OK();
  int64_t wait_us = 0;

  if (!go_parallel) {
    for (size_t m = 0; m < num_morsels; ++m) {
      // Morsel boundary: the cancellation contract's poll point.
      if (cancel_ != nullptr && cancel_->cancelled()) {
        result = cancel_->CheckCancelled();
        break;
      }
      StopWatch task;
      Status s = body(m);
      morsel_us[m] = task.ElapsedMicros();
      if (!s.ok()) {
        result = std::move(s);
        break;
      }
    }
  } else {
    // Every morsel gets a status slot; the earliest non-OK wins, matching
    // the serial engine's first-failure semantics because morsels cover
    // rows in order. Workers poll the token at their morsel boundary and
    // park a trip status instead of running the body.
    std::vector<Status> statuses(num_morsels, Status::OK());
    net::TaskGroup group(pool_);
    for (size_t m = 0; m < num_morsels; ++m) {
      group.Run([this, m, &body, &statuses, &morsel_us] {
        if (cancel_ != nullptr && cancel_->cancelled()) {
          statuses[m] = cancel_->CheckCancelled();
          return;
        }
        StopWatch task;
        statuses[m] = body(m);
        morsel_us[m] = task.ElapsedMicros();
      });
    }
    StopWatch waiting;
    std::exception_ptr thrown = group.Wait();
    wait_us = waiting.ElapsedMicros();
    if (thrown != nullptr) {
      try {
        std::rethrow_exception(thrown);
      } catch (const std::exception& e) {
        result = Status::Internal(std::string("morsel task threw: ") + e.what());
      } catch (...) {
        result = Status::Internal("morsel task threw a non-std exception");
      }
    }
    if (result.ok()) {
      for (Status& s : statuses) {
        if (!s.ok()) {
          result = std::move(s);
          break;
        }
      }
    }
  }

  if (metrics_ != nullptr) {
    metrics_->RecordExecOp(op, static_cast<int64_t>(num_morsels),
                           wall.ElapsedMicros(), wait_us, go_parallel);
    metrics_->RecordExecMorselTimes(morsel_us);
  }
  return result;
}

}  // namespace xrpc::compiler
