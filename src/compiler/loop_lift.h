#ifndef XRPC_COMPILER_LOOP_LIFT_H_
#define XRPC_COMPILER_LOOP_LIFT_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/table.h"
#include "base/statusor.h"
#include "core/catalog.h"
#include "server/engine.h"
#include "shred/shredded_doc.h"
#include "xquery/context.h"
#include "xquery/module.h"

namespace xrpc::net {
class RpcMetrics;
class ThreadPool;
}  // namespace xrpc::net

namespace xrpc::compiler {

/// Captured intermediate tables of one loop-lifted XRPC call — the
/// map/req/msg/res/result tables of Figure 1. Recorded when tracing is on.
struct BulkRpcTrace {
  struct PerPeer {
    std::string peer;
    algebra::Table map;  ///< iter | iterp
    std::vector<algebra::Table> req;  ///< per parameter: iterp|pos|item
    algebra::Table msg = algebra::Table::IterPosItem();  ///< iterp|pos|item
    algebra::Table res = algebra::Table::IterPosItem();  ///< iter|pos|item
  };
  algebra::Table dst;     ///< the loop-lifted destination variable
  std::vector<PerPeer> peers;
  algebra::Table result;  ///< merged final iter|pos|item
};

/// Configuration of the loop-lifted evaluator.
struct LoopLiftConfig {
  xquery::DocumentProvider* documents = nullptr;
  xquery::ModuleResolver* modules = nullptr;
  server::BulkRpcChannel* rpc = nullptr;
  shred::ShredCache* shreds = nullptr;  ///< required
  int max_inline_depth = 128;
  bool trace_bulk_rpc = false;  ///< capture Figure 1 tables
  /// Ablation toggles (benchmarking the design choices; leave on).
  bool enable_hoisting = true;       ///< loop-invariant subplan hoisting
  bool enable_join_rewrite = true;   ///< equality-where hash join
  /// Cooperative cancellation token polled at every algebra-expression
  /// dispatch; a tripped token aborts evaluation with its status.
  const CancellationToken* cancel = nullptr;
  /// Peer catalog consulted to decompose logical "shard:<collection>"
  /// destinations into per-shard Bulk RPCs (DESIGN.md §13). Null disables
  /// decomposition; shard destinations then fail with an eval error.
  const core::Catalog* catalog = nullptr;
  /// Morsel-parallel execution (DESIGN.md §15). Per-iteration-independent
  /// operators split their input into iter-aligned morsels and run them on
  /// a worker pool; the merge re-establishes (iter, pos) order so output
  /// is byte-identical to serial execution at any worker count.
  /// exec_threads <= 1 keeps everything serial. When exec_pool is null and
  /// exec_threads > 1, the evaluator creates and owns a pool of that size;
  /// a non-null exec_pool is borrowed instead (its size wins).
  int exec_threads = 1;
  net::ThreadPool* exec_pool = nullptr;
  /// Target morsel granularity in input rows; morsels only break where
  /// iter changes, so a single oversized iter group stays one morsel.
  size_t morsel_rows = 1024;
  /// Sink for `exec:` observability lines (morsels run, wait time,
  /// per-operator wall clock). Null disables recording.
  net::RpcMetrics* metrics = nullptr;
};

/// The Pathfinder-style loop-lifted evaluator: XQuery expressions evaluate
/// to iter|pos|item tables relative to a loop relation, removing nested
/// for-loops in favor of bulk set-oriented execution (Section 3.1).
///
/// The payoff is Section 3.2: an `execute at` inside (arbitrarily nested)
/// for-loops sees ALL its iterations at once and emits ONE Bulk RPC
/// request per distinct destination peer, implementing the translation
/// rule of Figure 2 literally — including the ρ-renumbered per-peer
/// iterations and the order-restoring merge-union map-back.
///
/// Updating expressions are outside this engine's scope (MonetDB routes
/// them through a separate update path); they report kUnsupported and the
/// caller falls back to the interpreter.
class LoopLiftedEvaluator {
 public:
  explicit LoopLiftedEvaluator(const LoopLiftConfig& config);
  ~LoopLiftedEvaluator();

  LoopLiftedEvaluator(const LoopLiftedEvaluator&) = delete;
  LoopLiftedEvaluator& operator=(const LoopLiftedEvaluator&) = delete;

  /// Evaluates a main module under the singleton loop relation.
  StatusOr<xdm::Sequence> EvaluateQuery(const xquery::MainModule& query);

  /// Evaluates `arity` loop-lifted applications of a module function: the
  /// server side of a Bulk RPC. args[p] holds parameter p of every call
  /// as an iter|pos|item table with iters 1..num_calls; the result table
  /// holds one result sequence per iter.
  StatusOr<algebra::Table> EvaluateFunctionBulk(
      const xquery::LibraryModule& module, const xquery::FunctionDef& def,
      const std::vector<algebra::Table>& args, int64_t num_calls);

  /// Bulk RPC traces captured so far (trace_bulk_rpc only).
  const std::vector<BulkRpcTrace>& traces() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

/// Converts between sequences and canonical tables.
algebra::Table SequenceToTable(const xdm::Sequence& seq, int64_t iter);
xdm::Sequence TableToSequence(const algebra::Table& table, int64_t iter);

}  // namespace xrpc::compiler

#endif  // XRPC_COMPILER_LOOP_LIFT_H_
