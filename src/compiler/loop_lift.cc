#include "compiler/loop_lift.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <set>
#include <utility>

#include "algebra/morsel.h"
#include "base/string_util.h"
#include "compiler/morsel_exec.h"
#include "net/thread_pool.h"
#include "xml/serializer.h"

namespace xrpc::compiler {

namespace {

using algebra::Cell;
using algebra::Table;
using xdm::AtomicType;
using xdm::AtomicValue;
using xdm::Item;
using xdm::Sequence;
using xml::Node;
using xml::NodeKind;
using xml::NodePtr;
using xquery::Axis;
using xquery::CompOp;
using xquery::Expr;
using xquery::ExprKind;
using xquery::ExprPtr;
using xquery::FlworClause;
using xquery::NodeTest;
using xquery::PathStep;

/// Hidden variable names binding the dynamic focus (Pathfinder encodes the
/// context item as an ordinary loop-lifted variable).
constexpr char kDotVar[] = "{fs}dot";
constexpr char kPositionVar[] = "{fs}position";
constexpr char kLastVar[] = "{fs}last";

/// The loop relation: ordered distinct iteration numbers.
using Loop = std::vector<int64_t>;

std::unordered_map<int64_t, std::vector<size_t>> GroupByIter(const Table& t) {
  std::unordered_map<int64_t, std::vector<size_t>> groups;
  groups.reserve(t.NumRows());
  for (size_t i = 0; i < t.NumRows(); ++i) {
    groups[t.Iter(i)].push_back(i);
  }
  return groups;
}

/// True if rows are non-decreasing in iter (the common case: every helper
/// producing tables emits them in loop order).
bool SortedByIter(const Table& t) {
  for (size_t i = 1; i < t.NumRows(); ++i) {
    if (t.Iter(i) < t.Iter(i - 1)) return false;
  }
  return true;
}

/// True if `loop` is the contiguous range [front..back] (for-loops always
/// mint contiguous ranges).
bool ContiguousLoop(const std::vector<int64_t>& loop) {
  return !loop.empty() &&
         loop.back() - loop.front() + 1 == static_cast<int64_t>(loop.size());
}

// ---- Loop-invariant hoisting analysis (Pathfinder performs the algebraic
// equivalent: subplans independent of the loop relation are evaluated once
// and joined back). An expression is hoistable when it has no free
// variables (including the hidden focus) and constructs no nodes (node
// constructors must mint fresh identities per iteration).

void CollectHoistInfo(const Expr& e, std::set<std::string>* bound,
                      bool* has_free, bool* blocks, bool* has_rpc);

void CollectChildHoistInfo(const Expr& e, std::set<std::string>* bound,
                           bool* has_free, bool* blocks, bool* has_rpc) {
  for (const ExprPtr& c : e.children) {
    if (c) CollectHoistInfo(*c, bound, has_free, blocks, has_rpc);
  }
  if (e.where) CollectHoistInfo(*e.where, bound, has_free, blocks, has_rpc);
  for (const xquery::OrderSpec& o : e.order_by) {
    if (o.key) CollectHoistInfo(*o.key, bound, has_free, blocks, has_rpc);
  }
  if (e.ret) CollectHoistInfo(*e.ret, bound, has_free, blocks, has_rpc);
  for (const ExprPtr& p : e.predicates) {
    if (p) {
      std::set<std::string> inner = *bound;
      inner.insert(kDotVar);
      inner.insert(kPositionVar);
      inner.insert(kLastVar);
      CollectHoistInfo(*p, &inner, has_free, blocks, has_rpc);
    }
  }
  for (const ExprPtr& a : e.attributes) {
    if (a) CollectHoistInfo(*a, bound, has_free, blocks, has_rpc);
  }
  if (e.name_expr) CollectHoistInfo(*e.name_expr, bound, has_free, blocks, has_rpc);
  for (const PathStep& step : e.steps) {
    for (const ExprPtr& p : step.predicates) {
      if (p) {
        std::set<std::string> inner = *bound;
        inner.insert(kDotVar);
        inner.insert(kPositionVar);
        inner.insert(kLastVar);
        CollectHoistInfo(*p, &inner, has_free, blocks, has_rpc);
      }
    }
  }
}

void CollectHoistInfo(const Expr& e, std::set<std::string>* bound,
                      bool* has_free, bool* blocks, bool* has_rpc) {
  switch (e.kind) {
    case ExprKind::kExecuteAt:
      *has_rpc = true;
      CollectChildHoistInfo(e, bound, has_free, blocks, has_rpc);
      return;
    case ExprKind::kVarRef:
      if (bound->count(e.name.Clark()) == 0) *has_free = true;
      return;
    case ExprKind::kContextItem:
      if (bound->count(kDotVar) == 0) *has_free = true;
      return;
    case ExprKind::kElementCtor:
    case ExprKind::kAttributeCtor:
    case ExprKind::kTextCtor:
    case ExprKind::kCommentCtor:
    case ExprKind::kPiCtor:
    case ExprKind::kDocumentCtor:
      *blocks = true;  // constructors mint per-iteration node identities
      return;
    case ExprKind::kPath:
      // A relative path (no source expression) reads the context item.
      if (e.children[0] == nullptr && bound->count(kDotVar) == 0) {
        *has_free = true;
      }
      CollectChildHoistInfo(e, bound, has_free, blocks, has_rpc);
      return;
    case ExprKind::kFunctionCall:
      if (e.name.ns_uri == xquery::kFnNs &&
          (e.name.local == "position" || e.name.local == "last")) {
        if (bound->count(kPositionVar) == 0) *has_free = true;
        return;
      }
      if (e.name.ns_uri != xquery::kFnNs && e.name.ns_uri != xml::kXsNs) {
        *blocks = true;  // user function bodies are opaque here
      }
      CollectChildHoistInfo(e, bound, has_free, blocks, has_rpc);
      return;
    case ExprKind::kFlwor:
    case ExprKind::kQuantified: {
      std::set<std::string> inner = *bound;
      for (const FlworClause& c : e.clauses) {
        if (c.expr) CollectHoistInfo(*c.expr, &inner, has_free, blocks, has_rpc);
        inner.insert(c.var.Clark());
        if (!c.pos_var.empty()) inner.insert(c.pos_var.Clark());
      }
      Expr shallow(e.kind);  // visit the non-clause parts under `inner`
      if (e.where) {
        CollectHoistInfo(*e.where, &inner, has_free, blocks, has_rpc);
      }
      for (const xquery::OrderSpec& o : e.order_by) {
        if (o.key) CollectHoistInfo(*o.key, &inner, has_free, blocks, has_rpc);
      }
      if (e.ret) CollectHoistInfo(*e.ret, &inner, has_free, blocks, has_rpc);
      (void)shallow;
      return;
    }
    default:
      CollectChildHoistInfo(e, bound, has_free, blocks, has_rpc);
      return;
  }
}

/// True if evaluating `e` once and broadcasting the result over the loop
/// preserves semantics AND the expression performs no RPC: `execute at`
/// is never hoisted — the protocol performs one remote application per
/// iteration (that is what Bulk RPC batches).
bool IsHoistable(const Expr& e) {
  // Only hoist kinds whose single evaluation is expensive enough to matter.
  if (e.kind != ExprKind::kPath && e.kind != ExprKind::kFilter &&
      e.kind != ExprKind::kFunctionCall) {
    return false;
  }
  std::set<std::string> bound;
  bool has_free = false, blocks = false, has_rpc = false;
  CollectHoistInfo(e, &bound, &has_free, &blocks, &has_rpc);
  return !has_free && !blocks && !has_rpc;
}

/// Loop-invariance for the hash-join binding: the join evaluates the
/// build side once, which is sound for remote calls too (they are pure
/// reads under the join rewrite, as in any distributed query optimizer).
bool IsJoinInvariant(const Expr& e) {
  std::set<std::string> bound;
  bool has_free = false, blocks = false, has_rpc = false;
  CollectHoistInfo(e, &bound, &has_free, &blocks, &has_rpc);
  return !has_free && !blocks;
}

/// Collects the free variable names of `e` (Clark names; the hidden focus
/// variables appear as {fs}dot etc. when the context leaks out).
void CollectFreeNames(const Expr& e, std::set<std::string> bound,
                      std::set<std::string>* free);

void CollectFreeNamesChildren(const Expr& e, const std::set<std::string>& bound,
                              std::set<std::string>* free) {
  auto visit_pred = [&](const ExprPtr& pred) {
    std::set<std::string> inner = bound;
    inner.insert(kDotVar);
    inner.insert(kPositionVar);
    inner.insert(kLastVar);
    CollectFreeNames(*pred, std::move(inner), free);
  };
  for (const ExprPtr& c : e.children) {
    if (c) CollectFreeNames(*c, bound, free);
  }
  if (e.where) CollectFreeNames(*e.where, bound, free);
  for (const xquery::OrderSpec& o : e.order_by) {
    if (o.key) CollectFreeNames(*o.key, bound, free);
  }
  if (e.ret) CollectFreeNames(*e.ret, bound, free);
  for (const ExprPtr& pr : e.predicates) {
    if (pr) visit_pred(pr);
  }
  for (const ExprPtr& a : e.attributes) {
    if (a) CollectFreeNames(*a, bound, free);
  }
  if (e.name_expr) CollectFreeNames(*e.name_expr, bound, free);
  for (const PathStep& step : e.steps) {
    for (const ExprPtr& pr : step.predicates) {
      if (pr) visit_pred(pr);
    }
  }
}

void CollectFreeNames(const Expr& e, std::set<std::string> bound,
                      std::set<std::string>* free) {
  switch (e.kind) {
    case ExprKind::kVarRef:
      if (bound.count(e.name.Clark()) == 0) free->insert(e.name.Clark());
      return;
    case ExprKind::kContextItem:
      if (bound.count(kDotVar) == 0) free->insert(kDotVar);
      return;
    case ExprKind::kPath:
      if (e.children[0] == nullptr && bound.count(kDotVar) == 0) {
        free->insert(kDotVar);
      }
      CollectFreeNamesChildren(e, bound, free);
      return;
    case ExprKind::kFunctionCall:
      if (e.name.ns_uri == xquery::kFnNs &&
          (e.name.local == "position" || e.name.local == "last") &&
          bound.count(kPositionVar) == 0) {
        free->insert(kPositionVar);
      }
      CollectFreeNamesChildren(e, bound, free);
      return;
    case ExprKind::kFlwor:
    case ExprKind::kQuantified: {
      for (const FlworClause& c : e.clauses) {
        if (c.expr) CollectFreeNames(*c.expr, bound, free);
        bound.insert(c.var.Clark());
        if (!c.pos_var.empty()) bound.insert(c.pos_var.Clark());
      }
      if (e.where) CollectFreeNames(*e.where, bound, free);
      for (const xquery::OrderSpec& o : e.order_by) {
        if (o.key) CollectFreeNames(*o.key, bound, free);
      }
      if (e.ret) CollectFreeNames(*e.ret, bound, free);
      return;
    }
    default:
      CollectFreeNamesChildren(e, bound, free);
      return;
  }
}

bool IsStringJoinableType(AtomicType t) {
  return t == AtomicType::kUntypedAtomic || t == AtomicType::kString ||
         t == AtomicType::kAnyUri;
}

/// Sorts an iter|pos|item table by (iter, pos).
Table SortIPI(const Table& t) {
  auto sorted = algebra::SortBy(t, {"iter", "pos"});
  return sorted.ok() ? std::move(sorted).value() : t;
}

}  // namespace

Table SequenceToTable(const Sequence& seq, int64_t iter) {
  Table t = Table::IterPosItem();
  for (size_t i = 0; i < seq.size(); ++i) {
    t.AppendIPI(iter, static_cast<int64_t>(i + 1), seq[i]);
  }
  return t;
}

Sequence TableToSequence(const Table& table, int64_t iter) {
  std::vector<std::pair<int64_t, Item>> rows;
  for (size_t i = 0; i < table.NumRows(); ++i) {
    if (table.Iter(i) == iter) rows.emplace_back(table.Pos(i), table.ItemAt(i));
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  Sequence out;
  out.reserve(rows.size());
  for (auto& [pos, item] : rows) out.push_back(std::move(item));
  return out;
}

// ===========================================================================

class LoopLiftedEvaluator::Impl {
 public:
  explicit Impl(const LoopLiftConfig& config) : cfg_(config) {
    if (cfg_.exec_pool != nullptr) {
      pool_ = cfg_.exec_pool;
    } else if (cfg_.exec_threads > 1) {
      owned_pool_ = std::make_unique<net::ThreadPool>(
          static_cast<size_t>(cfg_.exec_threads));
      pool_ = owned_pool_.get();
    }
    exec_ = std::make_unique<MorselExecutor>(pool_, cfg_.cancel, cfg_.metrics);
  }

  StatusOr<Sequence> EvaluateQuery(const xquery::MainModule& query) {
    XRPC_ASSIGN_OR_RETURN(Scope scope, BuildScope(&query.prolog, ""));
    scopes_.push_back(std::move(scope));
    Loop loop{1};
    for (const auto& [name, init] : query.prolog.variables) {
      XRPC_ASSIGN_OR_RETURN(Table v, Eval(*init, loop));
      env_.emplace_back(name.Clark(), std::move(v));
    }
    XRPC_ASSIGN_OR_RETURN(Table result, Eval(*query.body, loop));
    return TableToSequence(SortIPI(result), 1);
  }

  StatusOr<Table> EvaluateFunctionBulk(const xquery::LibraryModule& module,
                                       const xquery::FunctionDef& def,
                                       const std::vector<Table>& args,
                                       int64_t num_calls) {
    if (args.size() != def.arity()) {
      return Status::TypeError("bulk call arity mismatch for " +
                               def.name.Lexical());
    }
    XRPC_ASSIGN_OR_RETURN(Scope scope,
                          BuildScope(&module.prolog, module.target_ns));
    scopes_.push_back(std::move(scope));
    Loop loop;
    loop.reserve(static_cast<size_t>(num_calls));
    for (int64_t i = 1; i <= num_calls; ++i) loop.push_back(i);
    size_t env_mark = env_.size();
    for (size_t p = 0; p < args.size(); ++p) {
      XRPC_ASSIGN_OR_RETURN(
          Table coerced, CoerceTable(args[p], def.params[p].type));
      env_.emplace_back(def.params[p].name.Clark(), std::move(coerced));
    }
    auto result = Eval(*def.body, loop);
    env_.resize(env_mark);
    scopes_.pop_back();
    if (!result.ok()) return result.status();
    return SortIPI(result.value());
  }

  const std::vector<BulkRpcTrace>& traces() const { return traces_; }

 private:
  // ----------------------------------------------------------- scaffolding

  struct Scope {
    const xquery::Prolog* prolog = nullptr;
    std::string self_ns;
    std::map<std::string, const xquery::LibraryModule*> imports_by_ns;
    std::map<std::string, std::string> location_by_ns;
  };

  StatusOr<Scope> BuildScope(const xquery::Prolog* prolog,
                             std::string self_ns) {
    Scope scope;
    scope.prolog = prolog;
    scope.self_ns = std::move(self_ns);
    for (const xquery::ModuleImport& imp : prolog->imports) {
      scope.location_by_ns[imp.target_ns] = imp.location;
      if (cfg_.modules != nullptr) {
        auto resolved = cfg_.modules->Resolve(imp.target_ns, imp.location);
        if (resolved.ok()) scope.imports_by_ns[imp.target_ns] = resolved.value();
      }
    }
    return scope;
  }

  StatusOr<const Table*> LookupVar(const std::string& clark) const {
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (it->first == clark) return &it->second;
    }
    return Status::EvalError("unbound variable $" + clark);
  }

  /// Restricts a value table to the iters of `loop`.
  Table RestrictToLoop(const Table& t, const Loop& loop) const {
    auto in_loop = [&](int64_t iter) {
      if (ContiguousLoop(loop)) {
        return iter >= loop.front() && iter <= loop.back();
      }
      return std::binary_search(loop.begin(), loop.end(), iter);
    };
    // Fast path: every row already in the loop — return the table as-is.
    bool all_in = true;
    for (size_t i = 0; i < t.NumRows(); ++i) {
      if (!in_loop(t.Iter(i))) {
        all_in = false;
        break;
      }
    }
    if (all_in) return t;
    Table out = Table::IterPosItem();
    for (size_t i = 0; i < t.NumRows(); ++i) {
      if (in_loop(t.Iter(i))) {
        out.AppendIPI(t.Iter(i), t.Pos(i), t.ItemAt(i));
      }
    }
    return out;
  }

  /// Per-iter singleton atomization; `required` makes absence an error.
  StatusOr<std::unordered_map<int64_t, AtomicValue>> AtomizedSingletons(
      const Table& t, const char* what) const {
    std::unordered_map<int64_t, AtomicValue> out;
    out.reserve(t.NumRows());
    for (size_t i = 0; i < t.NumRows(); ++i) {
      int64_t iter = t.Iter(i);
      if (out.count(iter) > 0) {
        return Status::TypeError(std::string(what) +
                                 ": more than one item in an iteration");
      }
      out.emplace(iter, t.ItemAt(i).Atomize());
    }
    return out;
  }

  StatusOr<Table> CoerceTable(const Table& t, const xquery::SequenceType& type) {
    if (type.kind != xquery::SequenceType::ItemKind::kAtomic) return t;
    Table out = Table::IterPosItem();
    for (size_t i = 0; i < t.NumRows(); ++i) {
      AtomicValue v = t.ItemAt(i).Atomize();
      if (v.type() != type.atomic) {
        XRPC_ASSIGN_OR_RETURN(v, v.CastTo(type.atomic));
      }
      out.AppendIPI(t.Iter(i), t.Pos(i), Item(std::move(v)));
    }
    return out;
  }

  // ------------------------------------------------------------ dispatcher

  StatusOr<Table> Eval(const Expr& e, const Loop& loop) {
    if (cfg_.cancel != nullptr) {
      // Set-oriented plans batch whole loops into single operators, so the
      // per-dispatch poll here is the finest boundary this engine has; it
      // is checked BEFORE the empty-loop shortcut so even degenerate plans
      // observe a tripped deadline.
      XRPC_RETURN_IF_ERROR(cfg_.cancel->CheckCancelled());
    }
    if (loop.empty()) return Table::IterPosItem();
    // Loop-invariant hoisting: evaluate once, broadcast over the loop.
    if (cfg_.enable_hoisting && loop.size() > 1) {
      auto cached = hoistable_.find(&e);
      bool hoistable = cached != hoistable_.end() ? cached->second
                                                  : (hoistable_[&e] = IsHoistable(e));
      if (hoistable) {
        XRPC_ASSIGN_OR_RETURN(Table once, Eval(e, Loop{loop.front()}));
        Table out = Table::IterPosItem();
        for (int64_t iter : loop) {
          for (size_t i = 0; i < once.NumRows(); ++i) {
            out.AppendIPI(iter, once.Pos(i), once.ItemAt(i));
          }
        }
        return out;
      }
    }
    switch (e.kind) {
      case ExprKind::kLiteral: {
        Table t = Table::IterPosItem();
        for (int64_t iter : loop) t.AppendIPI(iter, 1, Item(e.literal));
        return t;
      }
      case ExprKind::kSequence:
        return EvalSequence(e, loop);
      case ExprKind::kRange:
        return EvalRange(e, loop);
      case ExprKind::kVarRef: {
        XRPC_ASSIGN_OR_RETURN(const Table* t, LookupVar(e.name.Clark()));
        return RestrictToLoop(*t, loop);
      }
      case ExprKind::kContextItem: {
        XRPC_ASSIGN_OR_RETURN(const Table* t, LookupVar(kDotVar));
        return RestrictToLoop(*t, loop);
      }
      case ExprKind::kFlwor:
        return EvalFlwor(e, loop);
      case ExprKind::kIf:
        return EvalIf(e, loop);
      case ExprKind::kQuantified:
        return EvalQuantified(e, loop);
      case ExprKind::kOr:
      case ExprKind::kAnd:
        return EvalLogic(e, loop);
      case ExprKind::kComparison:
        return EvalComparison(e, loop);
      case ExprKind::kArith:
        return EvalArith(e, loop);
      case ExprKind::kUnaryMinus: {
        XRPC_ASSIGN_OR_RETURN(Table v, Eval(*e.children[0], loop));
        Table out = Table::IterPosItem();
        for (size_t i = 0; i < v.NumRows(); ++i) {
          AtomicValue a = v.ItemAt(i).Atomize();
          if (a.type() == AtomicType::kInteger) {
            out.AppendIPI(v.Iter(i), 1, Item(AtomicValue::Integer(-a.AsInteger())));
          } else {
            out.AppendIPI(v.Iter(i), 1, Item(AtomicValue::Double(-a.AsDouble())));
          }
        }
        return out;
      }
      case ExprKind::kUnion:
        return EvalUnion(e, loop);
      case ExprKind::kPath:
        return EvalPath(e, loop);
      case ExprKind::kFilter: {
        XRPC_ASSIGN_OR_RETURN(Table in, Eval(*e.children[0], loop));
        return ApplyPredicates(std::move(in), e.predicates);
      }
      case ExprKind::kFunctionCall:
        return EvalFunctionCall(e, loop);
      case ExprKind::kExecuteAt:
        return EvalExecuteAt(e, loop);
      case ExprKind::kElementCtor:
      case ExprKind::kAttributeCtor:
      case ExprKind::kTextCtor:
      case ExprKind::kCommentCtor:
      case ExprKind::kPiCtor:
      case ExprKind::kDocumentCtor:
        return EvalConstructor(e, loop);
      case ExprKind::kCastAs:
      case ExprKind::kCastableAs:
      case ExprKind::kInstanceOf:
      case ExprKind::kTreatAs:
        return EvalTypeExpr(e, loop);
      case ExprKind::kInsert:
      case ExprKind::kDelete:
      case ExprKind::kReplaceNode:
      case ExprKind::kReplaceValue:
      case ExprKind::kRename:
        return Status::Unsupported(
            "updating expressions run on the update path, not the "
            "loop-lifted relational engine");
    }
    return Status::Internal("unhandled expression kind");
  }

  // ----------------------------------------------------------- structures

  StatusOr<Table> EvalSequence(const Expr& e, const Loop& loop) {
    // (e1, ..., en): per iter, concatenate branch results in order.
    std::vector<Table> parts;
    parts.reserve(e.children.size());
    for (const ExprPtr& c : e.children) {
      XRPC_ASSIGN_OR_RETURN(Table t, Eval(*c, loop));
      parts.push_back(SortIPI(t));
    }
    Table out = Table::IterPosItem();
    for (int64_t iter : loop) {
      int64_t pos = 0;
      for (const Table& part : parts) {
        for (size_t i = 0; i < part.NumRows(); ++i) {
          if (part.Iter(i) == iter) out.AppendIPI(iter, ++pos, part.ItemAt(i));
        }
      }
    }
    return out;
  }

  StatusOr<Table> EvalRange(const Expr& e, const Loop& loop) {
    XRPC_ASSIGN_OR_RETURN(Table lo_t, Eval(*e.children[0], loop));
    XRPC_ASSIGN_OR_RETURN(Table hi_t, Eval(*e.children[1], loop));
    XRPC_ASSIGN_OR_RETURN(auto lo, AtomizedSingletons(lo_t, "range"));
    XRPC_ASSIGN_OR_RETURN(auto hi, AtomizedSingletons(hi_t, "range"));
    Table out = Table::IterPosItem();
    for (int64_t iter : loop) {
      auto l = lo.find(iter);
      auto h = hi.find(iter);
      if (l == lo.end() || h == hi.end()) continue;
      int64_t a = l->second.AsInteger(), b = h->second.AsInteger();
      if (b - a > 100'000'000) return Status::EvalError("range too large");
      int64_t pos = 0;
      for (int64_t v = a; v <= b; ++v) {
        out.AppendIPI(iter, ++pos, Item(AtomicValue::Integer(v)));
      }
    }
    return out;
  }

  /// Remaps a value table through an outer->inner iteration map, yielding
  /// the table keyed by inner iters ("loop-lifting" a live variable into a
  /// deeper scope).
  Table MapIntoInner(const Table& t,
                     const std::multimap<int64_t, int64_t>& outer_to_inner) {
    Table out = Table::IterPosItem();
    for (size_t i = 0; i < t.NumRows(); ++i) {
      auto [lo, hi] = outer_to_inner.equal_range(t.Iter(i));
      for (auto it = lo; it != hi; ++it) {
        out.AppendIPI(it->second, t.Pos(i), t.ItemAt(i));
      }
    }
    return out;
  }

  /// MapIntoInner over a vector of (outer, inner) pairs sorted by outer.
  Table MapIntoInnerSorted(
      const Table& t,
      const std::vector<std::pair<int64_t, int64_t>>& outer_to_inner) {
    Table out = Table::IterPosItem();
    auto less_outer = [](const std::pair<int64_t, int64_t>& p, int64_t v) {
      return p.first < v;
    };
    for (size_t i = 0; i < t.NumRows(); ++i) {
      auto lo = std::lower_bound(outer_to_inner.begin(), outer_to_inner.end(),
                                 t.Iter(i), less_outer);
      for (; lo != outer_to_inner.end() && lo->first == t.Iter(i); ++lo) {
        out.AppendIPI(lo->second, t.Pos(i), t.ItemAt(i));
      }
    }
    return out;
  }

  /// Attempts to execute the final for-clause `c` plus the equality
  /// where-clause as a hash join. Returns true when the join path was
  /// taken (cur_loop/inner_to_outer/env updated, the where consumed);
  /// false to fall back to cross-product expansion. Conditions: the
  /// binding expression is loop-invariant, the where is a general `=` with
  /// one side depending only on $c.var and the other side not on it, and
  /// both key sides are singleton string-comparable values.
  StatusOr<bool> TryHashJoinClause(const Expr& e, const FlworClause& c,
                                   Loop* cur_loop,
                                   std::map<int64_t, int64_t>* inner_to_outer) {
    const Expr& w = *e.where;
    if (w.kind != ExprKind::kComparison || w.comp_op != CompOp::kGenEq) {
      return false;
    }
    auto cached = join_invariant_.find(c.expr.get());
    bool invariant =
        cached != join_invariant_.end()
            ? cached->second
            : (join_invariant_[c.expr.get()] = IsJoinInvariant(*c.expr));
    if (!invariant) return false;

    std::set<std::string> free_l, free_r;
    CollectFreeNames(*w.children[0], {}, &free_l);
    CollectFreeNames(*w.children[1], {}, &free_r);
    std::string var = c.var.Clark();
    const Expr* y_side = nullptr;
    const Expr* x_side = nullptr;
    auto only_var = [&](const std::set<std::string>& f) {
      return f.size() == 1 && *f.begin() == var;
    };
    auto without_var = [&](const std::set<std::string>& f) {
      return f.count(var) == 0 && f.count(kDotVar) == 0 &&
             f.count(kPositionVar) == 0;
    };
    if (only_var(free_l) && without_var(free_r)) {
      y_side = w.children[0].get();
      x_side = w.children[1].get();
    } else if (only_var(free_r) && without_var(free_l)) {
      y_side = w.children[1].get();
      x_side = w.children[0].get();
    } else {
      return false;
    }

    // Evaluate the binding once (it is loop-invariant).
    XRPC_ASSIGN_OR_RETURN(Table t_once, Eval(*c.expr, Loop{cur_loop->front()}));

    // Key each bound row: evaluate the y-side with $var bound per row.
    int64_t n = static_cast<int64_t>(t_once.NumRows());
    Loop yloop;
    Table yvar = Table::IterPosItem();
    for (int64_t i = 0; i < n; ++i) {
      int64_t iter = iter_base_ + i + 1;
      yloop.push_back(iter);
      yvar.AppendIPI(iter, 1, t_once.ItemAt(static_cast<size_t>(i)));
    }
    iter_base_ += n + 1;
    std::vector<std::pair<std::string, Table>> saved = std::move(env_);
    env_.clear();
    env_.emplace_back(var, std::move(yvar));
    auto ykeys_t = Eval(*y_side, yloop);
    env_ = std::move(saved);
    XRPC_RETURN_IF_ERROR(ykeys_t.status());
    auto ykeys_or = AtomizedSingletons(ykeys_t.value(), "join key");
    if (!ykeys_or.ok()) return false;  // multi-valued keys: fall back
    std::unordered_multimap<std::string, int64_t> build;
    build.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      auto it = ykeys_or.value().find(yloop[static_cast<size_t>(i)]);
      if (it == ykeys_or.value().end()) continue;  // empty key: never joins
      if (!IsStringJoinableType(it->second.type())) return false;
      build.emplace(it->second.ToString(), i);
    }

    // Probe side under the current loop.
    XRPC_ASSIGN_OR_RETURN(Table xkeys_t, Eval(*x_side, *cur_loop));
    auto xkeys_or = AtomizedSingletons(xkeys_t, "join key");
    if (!xkeys_or.ok()) return false;
    for (const auto& [iter, v] : xkeys_or.value()) {
      if (!IsStringJoinableType(v.type())) return false;
    }

    // Expand only the matching (outer, row) pairs, ordered by outer iter
    // then bound-row order.
    std::vector<std::pair<int64_t, int64_t>> old_to_new;
    std::map<int64_t, int64_t> next_inner_to_outer;
    Table var_table = Table::IterPosItem();
    Loop new_loop;
    for (int64_t iter : *cur_loop) {
      auto xk = xkeys_or.value().find(iter);
      if (xk == xkeys_or.value().end()) continue;
      auto [lo, hi] = build.equal_range(xk->second.ToString());
      std::vector<int64_t> rows;
      for (auto it = lo; it != hi; ++it) rows.push_back(it->second);
      std::sort(rows.begin(), rows.end());
      for (int64_t row : rows) {
        int64_t new_iter = ++iter_base_;
        old_to_new.emplace_back(iter, new_iter);
        next_inner_to_outer[new_iter] = (*inner_to_outer)[iter];
        new_loop.push_back(new_iter);
        var_table.AppendIPI(new_iter, 1,
                            t_once.ItemAt(static_cast<size_t>(row)));
      }
    }
    ++iter_base_;

    std::vector<std::pair<std::string, Table>> remapped;
    for (const auto& [name, table] : env_) {
      remapped.emplace_back(name, MapIntoInnerSorted(table, old_to_new));
    }
    env_ = std::move(remapped);
    env_.emplace_back(var, std::move(var_table));
    *inner_to_outer = std::move(next_inner_to_outer);
    *cur_loop = std::move(new_loop);
    return true;
  }

  StatusOr<Table> EvalFlwor(const Expr& e, const Loop& loop) {
    // State while processing clauses: the current inner loop, the
    // composed inner->outer map, and an env whose visible variables are
    // keyed by inner iters.
    Loop cur_loop = loop;
    std::map<int64_t, int64_t> inner_to_outer;
    for (int64_t iter : loop) inner_to_outer[iter] = iter;
    // The clause machinery remaps the whole environment into inner loops;
    // restore the caller's environment on every exit path.
    std::vector<std::pair<std::string, Table>> saved_env = env_;
    struct EnvRestorer {
      Impl* self;
      std::vector<std::pair<std::string, Table>>* saved;
      ~EnvRestorer() { self->env_ = std::move(*saved); }
    } restore{this, &saved_env};

    Status st = Status::OK();
    bool where_consumed = false;
    for (size_t k = 0; k < e.clauses.size(); ++k) {
      const FlworClause& c = e.clauses[k];

      // Join detection (the algebraic optimization MonetDB's relational
      // backend applies): the last for-clause combined with an equality
      // where-clause between a key of the new variable and a key of the
      // already-bound tuple is executed as a hash join instead of
      // materializing the cross product.
      if (cfg_.enable_join_rewrite && k + 1 == e.clauses.size() &&
          c.kind == FlworClause::Kind::kFor && c.pos_var.empty() &&
          e.where != nullptr && cur_loop.size() > 1) {
        auto joined = TryHashJoinClause(e, c, &cur_loop, &inner_to_outer);
        if (!joined.ok()) {
          st = joined.status();
          break;
        }
        if (joined.value()) {
          where_consumed = true;
          break;
        }
      }

      auto bound = Eval(*c.expr, cur_loop);
      if (!bound.ok()) {
        st = bound.status();
        break;
      }
      if (c.kind == FlworClause::Kind::kLet) {
        env_.emplace_back(c.var.Clark(), SortIPI(bound.value()));
        continue;
      }
      // for $v in t: every row of t becomes a new iteration.
      Table t = SortIPI(bound.value());
      std::vector<std::pair<int64_t, int64_t>> old_to_new;  // sorted by old
      Table var_table = Table::IterPosItem();
      Table pos_table = Table::IterPosItem();
      Loop new_loop;
      std::map<int64_t, int64_t> next_inner_to_outer;
      int64_t pos_index = 0;
      old_to_new.reserve(t.NumRows());
      for (size_t i = 0; i < t.NumRows(); ++i) {
        int64_t new_iter = static_cast<int64_t>(i + 1) + iter_base_;
        if (i > 0 && t.Iter(i) != t.Iter(i - 1)) pos_index = 0;
        old_to_new.emplace_back(t.Iter(i), new_iter);
        next_inner_to_outer[new_iter] = inner_to_outer[t.Iter(i)];
        new_loop.push_back(new_iter);
        var_table.AppendIPI(new_iter, 1, t.ItemAt(i));
        ++pos_index;
        if (!c.pos_var.empty()) {
          pos_table.AppendIPI(new_iter, 1,
                              Item(AtomicValue::Integer(pos_index)));
        }
      }
      iter_base_ += static_cast<int64_t>(t.NumRows()) + 1;

      // Remap visible variables into the new loop.
      std::vector<std::pair<std::string, Table>> remapped;
      for (const auto& [name, table] : env_) {
        remapped.emplace_back(name, MapIntoInnerSorted(table, old_to_new));
      }
      env_ = std::move(remapped);
      env_.emplace_back(c.var.Clark(), std::move(var_table));
      if (!c.pos_var.empty()) {
        env_.emplace_back(c.pos_var.Clark(), std::move(pos_table));
      }
      inner_to_outer = std::move(next_inner_to_outer);
      cur_loop = std::move(new_loop);
    }

    if (!st.ok()) return st;

    // where: restrict the loop (unless consumed by the hash join).
    if (e.where != nullptr && !where_consumed) {
      auto cond = EvalBool(*e.where, cur_loop);
      if (!cond.ok()) return cond.status();
      Loop filtered;
      for (int64_t iter : cur_loop) {
        auto it = cond.value().find(iter);
        if (it != cond.value().end() && it->second) filtered.push_back(iter);
      }
      cur_loop = std::move(filtered);
    }

    // order by: per inner iteration, compute sort keys.
    std::vector<int64_t> ordered_iters = cur_loop;
    if (!e.order_by.empty()) {
      struct Keyed {
        int64_t iter;
        std::vector<std::optional<AtomicValue>> keys;
      };
      std::vector<Keyed> keyed;
      keyed.reserve(cur_loop.size());
      std::vector<std::unordered_map<int64_t, AtomicValue>> key_maps;
      for (const xquery::OrderSpec& spec : e.order_by) {
        XRPC_ASSIGN_OR_RETURN(Table kt, Eval(*spec.key, cur_loop));
        XRPC_ASSIGN_OR_RETURN(auto km, AtomizedSingletons(kt, "order by"));
        key_maps.push_back(std::move(km));
      }
      for (int64_t iter : cur_loop) {
        Keyed k;
        k.iter = iter;
        for (auto& km : key_maps) {
          auto it = km.find(iter);
          k.keys.push_back(it == km.end()
                               ? std::nullopt
                               : std::optional<AtomicValue>(it->second));
        }
        keyed.push_back(std::move(k));
      }
      Status sort_error = Status::OK();
      std::stable_sort(keyed.begin(), keyed.end(), [&](const Keyed& a,
                                                       const Keyed& b) {
        // Iterations of distinct outer tuples keep their grouping by outer
        // iter first (XQuery order by sorts the tuple stream of the whole
        // FLWOR; with our composed maps outer grouping is preserved by the
        // stable sort as iters ascend with outer order).
        for (size_t i = 0; i < e.order_by.size(); ++i) {
          const xquery::OrderSpec& spec = e.order_by[i];
          const auto& ka = a.keys[i];
          const auto& kb = b.keys[i];
          if (!ka.has_value() || !kb.has_value()) {
            if (ka.has_value() == kb.has_value()) continue;
            bool a_first = !ka.has_value() != spec.empty_greatest;
            return spec.descending ? !a_first : a_first;
          }
          auto cmp = xdm::CompareAtomic(*ka, *kb);
          if (!cmp.ok()) {
            if (sort_error.ok()) sort_error = cmp.status();
            return false;
          }
          if (cmp.value() != 0) {
            return spec.descending ? cmp.value() > 0 : cmp.value() < 0;
          }
        }
        return false;
      });
      XRPC_RETURN_IF_ERROR(sort_error);
      ordered_iters.clear();
      for (const Keyed& k : keyed) ordered_iters.push_back(k.iter);
    }

    // return clause under the final loop; map back to outer iters with
    // pos renumbered in (ordered inner iteration, inner pos) order.
    XRPC_ASSIGN_OR_RETURN(Table ret, Eval(*e.ret, cur_loop));
    ret = SortIPI(ret);
    auto groups = GroupByIter(ret);
    Table out = Table::IterPosItem();
    std::map<int64_t, int64_t> out_pos;
    for (int64_t iter : ordered_iters) {
      auto g = groups.find(iter);
      if (g == groups.end()) continue;
      int64_t outer = inner_to_outer[iter];
      for (size_t row : g->second) {
        out.AppendIPI(outer, ++out_pos[outer], ret.ItemAt(row));
      }
    }
    return SortIPI(out);
  }

  StatusOr<Table> EvalIf(const Expr& e, const Loop& loop) {
    XRPC_ASSIGN_OR_RETURN(auto cond, EvalBool(*e.children[0], loop));
    Loop then_loop, else_loop;
    for (int64_t iter : loop) {
      auto it = cond.find(iter);
      (it != cond.end() && it->second ? then_loop : else_loop).push_back(iter);
    }
    Table out = Table::IterPosItem();
    if (!then_loop.empty()) {
      XRPC_ASSIGN_OR_RETURN(Table t, Eval(*e.children[1], then_loop));
      XRPC_ASSIGN_OR_RETURN(out, algebra::DisjointUnion(out, t));
    }
    if (!else_loop.empty()) {
      XRPC_ASSIGN_OR_RETURN(Table t, Eval(*e.children[2], else_loop));
      XRPC_ASSIGN_OR_RETURN(out, algebra::DisjointUnion(out, t));
    }
    return SortIPI(out);
  }

  StatusOr<Table> EvalQuantified(const Expr& e, const Loop& loop) {
    // some $v in E satisfies P / every ...: bind clauses like EvalFlwor
    // does, evaluate P per inner iteration, aggregate per outer iter.
    Loop cur_loop = loop;
    std::map<int64_t, int64_t> inner_to_outer;
    for (int64_t iter : loop) inner_to_outer[iter] = iter;
    size_t env_mark = env_.size();
    std::vector<std::pair<std::string, Table>> saved_env = env_;

    Status st = Status::OK();
    for (const FlworClause& c : e.clauses) {
      auto bound = Eval(*c.expr, cur_loop);
      if (!bound.ok()) {
        st = bound.status();
        break;
      }
      Table t = SortIPI(bound.value());
      std::multimap<int64_t, int64_t> old_to_new;
      std::map<int64_t, int64_t> new_to_old;
      Table var_table = Table::IterPosItem();
      Loop new_loop;
      for (size_t i = 0; i < t.NumRows(); ++i) {
        int64_t new_iter = static_cast<int64_t>(i + 1) + iter_base_;
        old_to_new.emplace(t.Iter(i), new_iter);
        new_to_old[new_iter] = t.Iter(i);
        new_loop.push_back(new_iter);
        var_table.AppendIPI(new_iter, 1, t.ItemAt(i));
      }
      iter_base_ += static_cast<int64_t>(t.NumRows()) + 1;
      std::vector<std::pair<std::string, Table>> remapped;
      for (const auto& [name, table] : env_) {
        remapped.emplace_back(name, MapIntoInner(table, old_to_new));
      }
      env_ = std::move(remapped);
      env_.emplace_back(c.var.Clark(), std::move(var_table));
      std::map<int64_t, int64_t> composed;
      for (const auto& [ni, oi] : new_to_old) composed[ni] = inner_to_outer[oi];
      inner_to_outer = std::move(composed);
      cur_loop = std::move(new_loop);
    }
    std::map<int64_t, bool> verdict;
    if (st.ok()) {
      auto cond = EvalBool(*e.ret, cur_loop);
      if (!cond.ok()) {
        st = cond.status();
      } else {
        for (int64_t iter : loop) verdict[iter] = e.every;
        for (int64_t inner : cur_loop) {
          bool b = false;
          auto it = cond.value().find(inner);
          if (it != cond.value().end()) b = it->second;
          int64_t outer = inner_to_outer[inner];
          if (e.every) {
            verdict[outer] = verdict[outer] && b;
          } else {
            verdict[outer] = verdict[outer] || b;
          }
        }
      }
    }
    env_ = std::move(saved_env);
    env_.resize(env_mark);
    XRPC_RETURN_IF_ERROR(st);
    Table out = Table::IterPosItem();
    for (int64_t iter : loop) {
      out.AppendIPI(iter, 1, Item(AtomicValue::Boolean(verdict[iter])));
    }
    return out;
  }

  StatusOr<Table> EvalLogic(const Expr& e, const Loop& loop) {
    XRPC_ASSIGN_OR_RETURN(auto l, EvalBool(*e.children[0], loop));
    XRPC_ASSIGN_OR_RETURN(auto r, EvalBool(*e.children[1], loop));
    Table out = Table::IterPosItem();
    for (int64_t iter : loop) {
      bool lb = l.count(iter) > 0 && l[iter];
      bool rb = r.count(iter) > 0 && r[iter];
      bool v = e.kind == ExprKind::kOr ? (lb || rb) : (lb && rb);
      out.AppendIPI(iter, 1, Item(AtomicValue::Boolean(v)));
    }
    return out;
  }

  /// Evaluates an expression to one effective boolean per iteration. The
  /// per-iteration EBVs are independent (filter/map work), so chunks of
  /// the loop relation run as morsels.
  StatusOr<std::map<int64_t, bool>> EvalBool(const Expr& e, const Loop& loop) {
    XRPC_ASSIGN_OR_RETURN(Table t, Eval(e, loop));
    auto groups = GroupByIter(t);
    std::vector<uint8_t> verdict(loop.size(), 0);
    auto ebv_rows = [&](size_t begin, size_t end) -> Status {
      PollGate gate(cfg_.cancel);
      Sequence seq;
      for (size_t idx = begin; idx < end; ++idx) {
        if (gate.Tick()) return gate.status();
        auto g = groups.find(loop[idx]);
        if (g == groups.end()) continue;
        seq.clear();
        for (size_t row : g->second) seq.push_back(t.ItemAt(row));
        XRPC_ASSIGN_OR_RETURN(bool b, xdm::EffectiveBooleanValue(seq));
        verdict[idx] = b ? 1 : 0;
      }
      return Status::OK();
    };
    std::vector<algebra::Morsel> morsels;
    if (exec_->parallel_capable() && loop.size() > 1) {
      morsels = algebra::SplitRows(loop.size(), cfg_.morsel_rows);
    }
    if (morsels.size() > 1) {
      Status run = exec_->Run("filter", morsels.size(), [&](size_t m) {
        return ebv_rows(morsels[m].begin, morsels[m].end);
      });
      XRPC_RETURN_IF_ERROR(run);
    } else {
      XRPC_RETURN_IF_ERROR(ebv_rows(0, loop.size()));
    }
    std::map<int64_t, bool> out;
    for (size_t i = 0; i < loop.size(); ++i) out[loop[i]] = verdict[i] != 0;
    return out;
  }

  StatusOr<Table> EvalComparison(const Expr& e, const Loop& loop) {
    XRPC_ASSIGN_OR_RETURN(Table l, Eval(*e.children[0], loop));
    XRPC_ASSIGN_OR_RETURN(Table r, Eval(*e.children[1], loop));
    auto lg = GroupByIter(l);
    auto rg = GroupByIter(r);

    auto satisfied = [&](int c) {
      switch (e.comp_op) {
        case CompOp::kGenEq:
        case CompOp::kValEq:
          return c == 0;
        case CompOp::kGenNe:
        case CompOp::kValNe:
          return c != 0;
        case CompOp::kGenLt:
        case CompOp::kValLt:
          return c < 0;
        case CompOp::kGenLe:
        case CompOp::kValLe:
          return c <= 0;
        case CompOp::kGenGt:
        case CompOp::kValGt:
          return c > 0;
        case CompOp::kGenGe:
        case CompOp::kValGe:
          return c >= 0;
        default:
          return false;
      }
    };
    bool value_comp =
        e.comp_op == CompOp::kValEq || e.comp_op == CompOp::kValNe ||
        e.comp_op == CompOp::kValLt || e.comp_op == CompOp::kValLe ||
        e.comp_op == CompOp::kValGt || e.comp_op == CompOp::kValGe;
    bool node_comp = e.comp_op == CompOp::kNodeIs ||
                     e.comp_op == CompOp::kNodeBefore ||
                     e.comp_op == CompOp::kNodeAfter;

    // The per-iteration verdicts are independent (atomization and atomic
    // comparison are pure), so chunks of the loop relation are morsel
    // work; per-chunk outputs concatenate in loop order, matching serial.
    auto compare_rows = [&](size_t begin, size_t end, Table* out) -> Status {
      PollGate gate(cfg_.cancel);
      for (size_t idx = begin; idx < end; ++idx) {
        if (gate.Tick()) return gate.status();
        int64_t iter = loop[idx];
        auto li = lg.find(iter);
        auto ri = rg.find(iter);
        if (li == lg.end() || ri == rg.end()) {
          if (value_comp || node_comp) continue;  // empty result
          out->AppendIPI(iter, 1, Item(AtomicValue::Boolean(false)));
          continue;
        }
        if (node_comp) {
          if (li->second.size() != 1 || ri->second.size() != 1) {
            return Status::TypeError("node comparison requires single nodes");
          }
          const Item& a = l.ItemAt(li->second[0]);
          const Item& b = r.ItemAt(ri->second[0]);
          if (!a.IsNode() || !b.IsNode()) {
            return Status::TypeError("node comparison requires nodes");
          }
          int c = xml::CompareDocumentOrder(a.node(), b.node());
          bool v = e.comp_op == CompOp::kNodeIs
                       ? a.node() == b.node()
                       : (e.comp_op == CompOp::kNodeBefore ? c < 0 : c > 0);
          out->AppendIPI(iter, 1, Item(AtomicValue::Boolean(v)));
          continue;
        }
        if (value_comp) {
          if (li->second.size() != 1 || ri->second.size() != 1) {
            return Status::TypeError("value comparison requires singletons");
          }
          AtomicValue a = l.ItemAt(li->second[0]).Atomize();
          AtomicValue b = r.ItemAt(ri->second[0]).Atomize();
          if (a.type() == AtomicType::kUntypedAtomic) {
            a = AtomicValue::String(a.ToString());
          }
          if (b.type() == AtomicType::kUntypedAtomic) {
            b = AtomicValue::String(b.ToString());
          }
          XRPC_ASSIGN_OR_RETURN(int c, xdm::CompareAtomic(a, b));
          out->AppendIPI(iter, 1, Item(AtomicValue::Boolean(satisfied(c))));
          continue;
        }
        // General comparison: existential semantics.
        bool found = false;
        for (size_t x : li->second) {
          if (found) break;
          AtomicValue a = l.ItemAt(x).Atomize();
          for (size_t y : ri->second) {
            AtomicValue b = r.ItemAt(y).Atomize();
            XRPC_ASSIGN_OR_RETURN(int c, xdm::CompareAtomic(a, b));
            if (satisfied(c)) {
              found = true;
              break;
            }
          }
        }
        out->AppendIPI(iter, 1, Item(AtomicValue::Boolean(found)));
      }
      return Status::OK();
    };

    std::vector<algebra::Morsel> morsels;
    if (exec_->parallel_capable() && loop.size() > 1) {
      morsels = algebra::SplitRows(loop.size(), cfg_.morsel_rows);
    }
    Table out = Table::IterPosItem();
    if (morsels.size() > 1) {
      std::vector<Table> outs(morsels.size(), Table::IterPosItem());
      Status run = exec_->Run("compare", morsels.size(), [&](size_t m) {
        return compare_rows(morsels[m].begin, morsels[m].end, &outs[m]);
      });
      XRPC_RETURN_IF_ERROR(run);
      for (Table& o : outs) out.AppendRowsFrom(std::move(o));
      return out;
    }
    XRPC_RETURN_IF_ERROR(compare_rows(0, loop.size(), &out));
    return out;
  }

  StatusOr<Table> EvalArith(const Expr& e, const Loop& loop) {
    XRPC_ASSIGN_OR_RETURN(Table l, Eval(*e.children[0], loop));
    XRPC_ASSIGN_OR_RETURN(Table r, Eval(*e.children[1], loop));
    XRPC_ASSIGN_OR_RETURN(auto lv, AtomizedSingletons(l, "arithmetic"));
    XRPC_ASSIGN_OR_RETURN(auto rv, AtomizedSingletons(r, "arithmetic"));
    Table out = Table::IterPosItem();
    for (int64_t iter : loop) {
      auto li = lv.find(iter);
      auto ri = rv.find(iter);
      if (li == lv.end() || ri == rv.end()) continue;
      AtomicValue a = li->second, b = ri->second;
      if (a.type() == AtomicType::kUntypedAtomic) {
        XRPC_ASSIGN_OR_RETURN(a, a.CastTo(AtomicType::kDouble));
      }
      if (b.type() == AtomicType::kUntypedAtomic) {
        XRPC_ASSIGN_OR_RETURN(b, b.CastTo(AtomicType::kDouble));
      }
      bool both_int = a.type() == AtomicType::kInteger &&
                      b.type() == AtomicType::kInteger;
      switch (e.arith_op) {
        case xquery::ArithOp::kAdd:
          out.AppendIPI(iter, 1,
                        both_int ? Item(AtomicValue::Integer(a.AsInteger() +
                                                             b.AsInteger()))
                                 : Item(AtomicValue::Double(a.AsDouble() +
                                                            b.AsDouble())));
          break;
        case xquery::ArithOp::kSub:
          out.AppendIPI(iter, 1,
                        both_int ? Item(AtomicValue::Integer(a.AsInteger() -
                                                             b.AsInteger()))
                                 : Item(AtomicValue::Double(a.AsDouble() -
                                                            b.AsDouble())));
          break;
        case xquery::ArithOp::kMul:
          out.AppendIPI(iter, 1,
                        both_int ? Item(AtomicValue::Integer(a.AsInteger() *
                                                             b.AsInteger()))
                                 : Item(AtomicValue::Double(a.AsDouble() *
                                                            b.AsDouble())));
          break;
        case xquery::ArithOp::kDiv:
          out.AppendIPI(iter, 1,
                        Item(AtomicValue::Double(a.AsDouble() / b.AsDouble())));
          break;
        case xquery::ArithOp::kIDiv: {
          if (b.AsDouble() == 0) {
            return Status::EvalError("division by zero (FOAR0001)");
          }
          out.AppendIPI(iter, 1,
                        Item(AtomicValue::Integer(static_cast<int64_t>(
                            std::trunc(a.AsDouble() / b.AsDouble())))));
          break;
        }
        case xquery::ArithOp::kMod: {
          if (both_int) {
            if (b.AsInteger() == 0) {
              return Status::EvalError("division by zero (FOAR0001)");
            }
            out.AppendIPI(iter, 1,
                          Item(AtomicValue::Integer(a.AsInteger() %
                                                    b.AsInteger())));
          } else {
            out.AppendIPI(iter, 1,
                          Item(AtomicValue::Double(
                              std::fmod(a.AsDouble(), b.AsDouble()))));
          }
          break;
        }
      }
    }
    return out;
  }

  StatusOr<Table> EvalUnion(const Expr& e, const Loop& loop) {
    XRPC_ASSIGN_OR_RETURN(Table l, Eval(*e.children[0], loop));
    XRPC_ASSIGN_OR_RETURN(Table r, Eval(*e.children[1], loop));
    XRPC_ASSIGN_OR_RETURN(Table both, algebra::DisjointUnion(l, r));
    return DocOrderPerIter(both);
  }

  /// Sorts node rows per iter into document order, deduplicates, and
  /// renumbers pos. Iter groups are independent, so the groups are morsel
  /// work: each worker sorts its own iter-aligned range and the in-order
  /// concatenation of the per-morsel outputs equals the serial result.
  StatusOr<Table> DocOrderPerIter(const Table& t_in) {
    Table sorted;
    const Table* t = &t_in;
    if (!SortedByIter(t_in)) {
      sorted = SortIPI(t_in);
      t = &sorted;
    }
    std::vector<algebra::Morsel> morsels;
    if (exec_->parallel_capable() && t->NumRows() > 1) {
      morsels = algebra::SplitIterAligned(*t, cfg_.morsel_rows);
    }
    Table out = Table::IterPosItem();
    if (morsels.size() > 1) {
      std::vector<Table> outs(morsels.size(), Table::IterPosItem());
      Status run = exec_->Run("docorder", morsels.size(), [&](size_t m) {
        return DocOrderRows(*t, morsels[m].begin, morsels[m].end, &outs[m]);
      });
      XRPC_RETURN_IF_ERROR(run);
      for (Table& o : outs) out.AppendRowsFrom(std::move(o));
      return out;
    }
    XRPC_RETURN_IF_ERROR(DocOrderRows(*t, 0, t->NumRows(), &out));
    return out;
  }

  /// Document-order sort of the consecutive iter groups in [begin, end).
  /// Pure: reads `t`, writes `out`, touches no evaluator state — safe on
  /// any worker.
  Status DocOrderRows(const Table& t, size_t begin, size_t end,
                      Table* out) const {
    PollGate gate(cfg_.cancel);
    Sequence seq;
    size_t i = begin;
    while (i < end) {
      if (gate.Tick()) return gate.status();
      int64_t iter = t.Iter(i);
      seq.clear();
      for (; i < end && t.Iter(i) == iter; ++i) {
        seq.push_back(t.ItemAt(i));
      }
      if (seq.size() == 1) {
        if (!seq[0].IsNode()) {
          return Status::TypeError(
              "path step result contains an atomic value (XPTY0018)");
        }
        out->AppendIPI(iter, 1, seq[0]);
        continue;
      }
      XRPC_RETURN_IF_ERROR(xdm::SortByDocumentOrder(&seq));
      for (size_t k = 0; k < seq.size(); ++k) {
        out->AppendIPI(iter, static_cast<int64_t>(k + 1), seq[k]);
      }
    }
    return Status::OK();
  }

  // ----------------------------------------------------------------- paths

  StatusOr<Table> EvalPath(const Expr& e, const Loop& loop) {
    Table input = Table::IterPosItem();
    if (e.children[0] != nullptr) {
      XRPC_ASSIGN_OR_RETURN(input, Eval(*e.children[0], loop));
    } else {
      XRPC_ASSIGN_OR_RETURN(const Table* dot, LookupVar(kDotVar));
      input = RestrictToLoop(*dot, loop);
      if (e.root_path) {
        Table roots = Table::IterPosItem();
        for (size_t i = 0; i < input.NumRows(); ++i) {
          const Item& item = input.ItemAt(i);
          if (!item.IsNode()) {
            return Status::TypeError("context item is not a node");
          }
          roots.AppendIPI(input.Iter(i), 1,
                          Item::NodeInTree(item.node()->Root(), item.anchor()));
        }
        input = std::move(roots);
      }
    }
    for (const PathStep& step : e.steps) {
      XRPC_ASSIGN_OR_RETURN(input, EvalStep(input, step));
    }
    return input;
  }

  static bool IsForwardAxis(Axis axis) {
    switch (axis) {
      case Axis::kChild:
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf:
      case Axis::kSelf:
      case Axis::kAttribute:
      case Axis::kFollowingSibling:
        return true;
      default:
        return false;
    }
  }

  StatusOr<Table> EvalStep(const Table& input, const PathStep& step) {
    // Morsel-parallel expansion: iter-aligned morsels never split an iter
    // group, so the per-morsel adjacent-duplicate checks compose exactly
    // and concatenating per-morsel outputs in morsel order reproduces the
    // serial row order byte for byte. Predicate-carrying steps fan out
    // only when every predicate passes the parallel-safety gate; each
    // worker then evaluates predicates on its own evaluator clone.
    std::vector<algebra::Morsel> morsels;
    if (exec_->parallel_capable() && input.NumRows() > 1 &&
        (step.predicates.empty() || ParallelSafePredicates(step))) {
      morsels = algebra::SplitIterAligned(input, cfg_.morsel_rows);
    }
    Table expanded = Table::IterPosItem();
    bool single_row_iters = true;  // no iter contributed two context nodes
    if (morsels.size() > 1) {
      std::vector<Table> outs(morsels.size(), Table::IterPosItem());
      std::vector<uint8_t> single(morsels.size(), 1);
      std::vector<std::unique_ptr<Impl>> clones;
      if (!step.predicates.empty()) {
        clones.resize(morsels.size());
        for (size_t m = 0; m < morsels.size(); ++m) {
          clones[m] = CloneForWorker(
              iter_base_ + static_cast<int64_t>(m + 1) * kWorkerIterStride);
        }
      }
      Status run = exec_->Run("step", morsels.size(), [&](size_t m) {
        Impl* self = clones.empty() ? this : clones[m].get();
        bool s = true;
        Status st = self->StepRows(input, morsels[m].begin, morsels[m].end,
                                   step, &outs[m], &s);
        single[m] = s ? 1 : 0;
        return st;
      });
      iter_base_ +=
          static_cast<int64_t>(morsels.size() + 1) * kWorkerIterStride;
      XRPC_RETURN_IF_ERROR(run);
      for (size_t m = 0; m < morsels.size(); ++m) {
        if (single[m] == 0) single_row_iters = false;
        expanded.AppendRowsFrom(std::move(outs[m]));
      }
    } else {
      XRPC_RETURN_IF_ERROR(StepRows(input, 0, input.NumRows(), step,
                                    &expanded, &single_row_iters));
    }
    if (single_row_iters && SortedByIter(expanded) &&
        IsForwardAxis(step.axis)) {
      return expanded;  // already per-iter document order, duplicate-free
    }
    return DocOrderPerIter(expanded);
  }

  /// Expands one range of EvalStep's context rows; row layout is identical
  /// to the serial loop. Ranges are iter-aligned, so the i > begin
  /// duplicate check never misses a cross-range pair.
  Status StepRows(const Table& input, size_t begin, size_t end,
                  const PathStep& step, Table* out, bool* single_row_iters) {
    PollGate gate(cfg_.cancel);
    Sequence nodes;
    for (size_t i = begin; i < end; ++i) {
      if (gate.Tick()) return gate.status();
      if (i > begin && input.Iter(i) == input.Iter(i - 1)) {
        *single_row_iters = false;
      }
      const Item& item = input.ItemAt(i);
      if (!item.IsNode()) {
        return Status::TypeError("path step applied to an atomic value");
      }
      nodes.clear();
      CollectAxis(item, step, &nodes);
      // Per-context-node predicate application (with focus).
      if (!step.predicates.empty()) {
        XRPC_ASSIGN_OR_RETURN(
            nodes,
            FilterWithPredicates(std::move(nodes), step.predicates,
                                 input.Iter(i)));
      }
      for (size_t k = 0; k < nodes.size(); ++k) {
        out->AppendIPI(input.Iter(i), static_cast<int64_t>(k + 1), nodes[k]);
      }
    }
    return Status::OK();
  }

  /// Axis navigation: descendant/child/attribute go through the shredded
  /// pre/size/level tables (staircase scans); the remaining axes use the
  /// DOM back-pointers.
  void CollectAxis(const Item& item, const PathStep& step, Sequence* out) {
    Node* n = item.node();
    const NodePtr& anchor = item.anchor();
    const NodeTest& test = step.test;

    auto name_test_only = test.kind == NodeTest::Kind::kName && !test.wildcard;

    if ((step.axis == Axis::kDescendant ||
         step.axis == Axis::kDescendantOrSelf || step.axis == Axis::kChild) &&
        (name_test_only || (test.kind == NodeTest::Kind::kName && test.wildcard) ||
         test.kind == NodeTest::Kind::kElement) &&
        cfg_.shreds != nullptr) {
      // Shredded fast path (elements only — which is what a name test
      // selects on these axes).
      auto shredded = cfg_.shreds->GetOrShred(
          n->Root() == anchor.get() ? anchor : n->Root()->shared_from_this());
      int32_t pre = shredded->PreOf(n);
      if (pre >= 0) {
        int32_t name_id = name_test_only ? shredded->NameId(test.name) : -1;
        if (name_test_only && name_id < 0) return;  // name never occurs
        std::vector<int32_t> pres;
        if (step.axis == Axis::kChild) {
          pres = shredded->ChildElements(pre, name_id);
        } else {
          pres = shredded->DescendantElements(pre, name_id);
          if (step.axis == Axis::kDescendantOrSelf) {
            const auto& row = shredded->Row(pre);
            bool self_matches =
                row.kind == NodeKind::kElement &&
                (name_id < 0 || row.name_id == name_id);
            if (self_matches) pres.insert(pres.begin(), pre);
          }
        }
        for (int32_t p : pres) {
          out->push_back(Item::NodeInTree(shredded->Row(p).dom, anchor));
        }
        return;
      }
    }

    // DOM fallback covering every axis and node test.
    auto matches = [&](const Node& m) {
      switch (test.kind) {
        case NodeTest::Kind::kAnyKind:
          return true;
        case NodeTest::Kind::kText:
          return m.kind() == NodeKind::kText;
        case NodeTest::Kind::kComment:
          return m.kind() == NodeKind::kComment;
        case NodeTest::Kind::kPi:
          return m.kind() == NodeKind::kProcessingInstruction;
        case NodeTest::Kind::kElement:
          return m.kind() == NodeKind::kElement;
        case NodeTest::Kind::kAttribute:
          return m.kind() == NodeKind::kAttribute;
        case NodeTest::Kind::kDocument:
          return m.kind() == NodeKind::kDocument;
        case NodeTest::Kind::kName: {
          NodeKind principal = step.axis == Axis::kAttribute
                                   ? NodeKind::kAttribute
                                   : NodeKind::kElement;
          if (m.kind() != principal) return false;
          return test.wildcard || m.name() == test.name;
        }
      }
      return false;
    };
    auto emit = [&](Node* m) {
      if (matches(*m)) out->push_back(Item::NodeInTree(m, anchor));
    };
    std::function<void(Node*)> descend = [&](Node* v) {
      for (const NodePtr& c : v->children()) {
        emit(c.get());
        descend(c.get());
      }
    };
    switch (step.axis) {
      case Axis::kChild:
        for (const NodePtr& c : n->children()) emit(c.get());
        return;
      case Axis::kAttribute:
        for (const NodePtr& a : n->attributes()) emit(a.get());
        return;
      case Axis::kSelf:
        emit(n);
        return;
      case Axis::kParent:
        if (n->parent() != nullptr) emit(n->parent());
        return;
      case Axis::kDescendant:
        descend(n);
        return;
      case Axis::kDescendantOrSelf:
        emit(n);
        descend(n);
        return;
      case Axis::kAncestor:
        for (Node* p = n->parent(); p != nullptr; p = p->parent()) emit(p);
        return;
      case Axis::kAncestorOrSelf:
        for (Node* p = n; p != nullptr; p = p->parent()) emit(p);
        return;
      case Axis::kFollowingSibling: {
        Node* parent = n->parent();
        if (parent == nullptr || n->kind() == NodeKind::kAttribute) return;
        for (size_t i = n->IndexInParent() + 1;
             i < parent->children().size(); ++i) {
          emit(parent->children()[i].get());
        }
        return;
      }
      case Axis::kPrecedingSibling: {
        Node* parent = n->parent();
        if (parent == nullptr || n->kind() == NodeKind::kAttribute) return;
        for (size_t i = 0; i < n->IndexInParent(); ++i) {
          emit(parent->children()[i].get());
        }
        return;
      }
    }
  }

  /// Applies predicates to a candidate node list by loop-lifting the
  /// predicate over the candidates: each candidate is one iteration, the
  /// context item/position/last become hidden variables, and the visible
  /// environment (bound in `enclosing_iter` of the outer loop) is remapped
  /// into the candidate loop so loop-dependent predicates such as
  /// [./buyer/@person = $pid] see the right binding per iteration.
  StatusOr<Sequence> FilterWithPredicates(
      Sequence candidates, const std::vector<ExprPtr>& predicates,
      int64_t enclosing_iter) {
    for (const ExprPtr& pred : predicates) {
      if (candidates.empty()) break;
      Loop cand_loop;
      Table dot = Table::IterPosItem();
      Table position = Table::IterPosItem();
      Table last = Table::IterPosItem();
      std::multimap<int64_t, int64_t> outer_to_cand;
      int64_t n = static_cast<int64_t>(candidates.size());
      for (int64_t i = 0; i < n; ++i) {
        int64_t iter = iter_base_ + i + 1;
        cand_loop.push_back(iter);
        outer_to_cand.emplace(enclosing_iter, iter);
        dot.AppendIPI(iter, 1, candidates[static_cast<size_t>(i)]);
        position.AppendIPI(iter, 1, Item(AtomicValue::Integer(i + 1)));
        last.AppendIPI(iter, 1, Item(AtomicValue::Integer(n)));
      }
      iter_base_ += n + 1;
      std::vector<std::pair<std::string, Table>> saved_env = std::move(env_);
      env_.clear();
      for (const auto& [name, table] : saved_env) {
        env_.emplace_back(name, MapIntoInner(table, outer_to_cand));
      }
      env_.emplace_back(kDotVar, std::move(dot));
      env_.emplace_back(kPositionVar, std::move(position));
      env_.emplace_back(kLastVar, std::move(last));
      auto value = Eval(*pred, cand_loop);
      env_ = std::move(saved_env);
      XRPC_RETURN_IF_ERROR(value.status());
      auto groups = GroupByIter(value.value());
      Sequence kept;
      for (int64_t i = 0; i < n; ++i) {
        int64_t iter = cand_loop[static_cast<size_t>(i)];
        auto g = groups.find(iter);
        if (g == groups.end()) continue;
        Sequence v;
        for (size_t row : g->second) {
          v.push_back(value.value().ItemAt(row));
        }
        bool keep;
        if (v.size() == 1 && v[0].IsAtomic() && v[0].atomic().IsNumeric()) {
          keep = v[0].atomic().AsDouble() == static_cast<double>(i + 1);
        } else {
          XRPC_ASSIGN_OR_RETURN(keep, xdm::EffectiveBooleanValue(v));
        }
        if (keep) kept.push_back(candidates[static_cast<size_t>(i)]);
      }
      candidates = std::move(kept);
    }
    return candidates;
  }

  StatusOr<Table> ApplyPredicates(Table in,
                                  const std::vector<ExprPtr>& predicates) {
    auto groups = GroupByIter(in);
    Table out = Table::IterPosItem();
    for (auto& [iter, rows] : groups) {
      Sequence seq;
      for (size_t row : rows) seq.push_back(in.ItemAt(row));
      XRPC_ASSIGN_OR_RETURN(seq, FilterWithPredicates(seq, predicates, iter));
      for (size_t i = 0; i < seq.size(); ++i) {
        out.AppendIPI(iter, static_cast<int64_t>(i + 1), seq[i]);
      }
    }
    return SortIPI(out);
  }

  // ------------------------------------------------------------ functions

  StatusOr<Table> EvalFunctionCall(const Expr& e, const Loop& loop);
  StatusOr<Table> EvalBuiltin(const Expr& e, const Loop& loop,
                              std::vector<Table> args);

  // -------------------------------------------------------------- XRPC

  StatusOr<Table> EvalExecuteAt(const Expr& e, const Loop& loop);

  // -------------------------------------------------------- constructors

  StatusOr<Table> EvalConstructor(const Expr& e, const Loop& loop);

  StatusOr<Table> EvalTypeExpr(const Expr& e, const Loop& loop) {
    XRPC_ASSIGN_OR_RETURN(Table v, Eval(*e.children[0], loop));
    auto groups = GroupByIter(v);
    Table out = Table::IterPosItem();
    for (int64_t iter : loop) {
      auto g = groups.find(iter);
      Sequence seq;
      if (g != groups.end()) {
        for (size_t row : g->second) seq.push_back(v.ItemAt(row));
      }
      switch (e.kind) {
        case ExprKind::kCastAs: {
          if (seq.empty()) {
            if (e.seq_type.occurrence == xquery::Occurrence::kZeroOrOne) {
              continue;
            }
            return Status::TypeError("cast of empty sequence");
          }
          if (seq.size() > 1) return Status::TypeError("cast of sequence");
          XRPC_ASSIGN_OR_RETURN(AtomicValue c,
                                seq[0].Atomize().CastTo(e.seq_type.atomic));
          out.AppendIPI(iter, 1, Item(std::move(c)));
          break;
        }
        case ExprKind::kCastableAs: {
          bool ok = seq.size() == 1 &&
                    seq[0].Atomize().CastTo(e.seq_type.atomic).ok();
          if (seq.empty()) {
            ok = e.seq_type.occurrence == xquery::Occurrence::kZeroOrOne;
          }
          out.AppendIPI(iter, 1, Item(AtomicValue::Boolean(ok)));
          break;
        }
        case ExprKind::kInstanceOf:
        case ExprKind::kTreatAs:
          return Status::Unsupported(
              "instance of / treat as on the relational path");
        default:
          return Status::Internal("not a type expression");
      }
    }
    return out;
  }

  // ------------------------------------------------- morsel parallelism

  /// Width of the fresh-iter window handed to each worker clone. Iters a
  /// clone mints (predicate candidate loops and the like) never escape
  /// into operator output; they only need to stay collision-free across
  /// workers while one parallel operator runs.
  static constexpr int64_t kWorkerIterStride = 1'000'000'000;

  /// A pool-less copy of this evaluator for one morsel worker: same
  /// environment and scopes (cheap — tables share their items), its own
  /// disjoint fresh-iter window, no pool (nested operators inside a worker
  /// degrade to serial, which keeps the shared pool free of re-entrant
  /// blocking), no tracing and no metrics (the parent records the whole
  /// operator).
  std::unique_ptr<Impl> CloneForWorker(int64_t iter_base) const {
    LoopLiftConfig cfg = cfg_;
    cfg.exec_threads = 1;
    cfg.exec_pool = nullptr;
    cfg.trace_bulk_rpc = false;
    cfg.metrics = nullptr;
    auto clone = std::make_unique<Impl>(cfg);
    clone->env_ = env_;
    clone->scopes_ = scopes_;
    clone->hoistable_ = hoistable_;
    clone->join_invariant_ = join_invariant_;
    clone->inline_depth_ = inline_depth_;
    clone->iter_base_ = iter_base;
    return clone;
  }

  /// True when evaluating `e` on a worker thread preserves both safety and
  /// byte-identical output: no `execute at` (shared RPC channel, traces),
  /// no node constructors (fresh node identities must be minted in serial
  /// order or relative document order between them becomes racy), no
  /// fn:doc (the document provider is not a parallel surface), and no
  /// opaque user/extension functions. Cached per expression node; only the
  /// main thread consults or fills the cache.
  bool ParallelSafeExpr(const Expr& e) {
    auto cached = parallel_safe_.find(&e);
    if (cached != parallel_safe_.end()) return cached->second;
    bool safe = ParallelSafeUncached(e);
    parallel_safe_.emplace(&e, safe);
    return safe;
  }

  bool ParallelSafeUncached(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kExecuteAt:
        return false;
      case ExprKind::kElementCtor:
      case ExprKind::kAttributeCtor:
      case ExprKind::kTextCtor:
      case ExprKind::kCommentCtor:
      case ExprKind::kPiCtor:
      case ExprKind::kDocumentCtor:
        return false;
      case ExprKind::kFunctionCall:
        if (e.name.ns_uri != xquery::kFnNs && e.name.ns_uri != xml::kXsNs) {
          return false;  // user/extension function bodies are opaque here
        }
        if (e.name.ns_uri == xquery::kFnNs && e.name.local == "doc") {
          return false;
        }
        break;
      default:
        break;
    }
    for (const ExprPtr& c : e.children) {
      if (c && !ParallelSafeExpr(*c)) return false;
    }
    if (e.where && !ParallelSafeExpr(*e.where)) return false;
    for (const xquery::OrderSpec& o : e.order_by) {
      if (o.key && !ParallelSafeExpr(*o.key)) return false;
    }
    if (e.ret && !ParallelSafeExpr(*e.ret)) return false;
    for (const ExprPtr& p : e.predicates) {
      if (p && !ParallelSafeExpr(*p)) return false;
    }
    for (const ExprPtr& a : e.attributes) {
      if (a && !ParallelSafeExpr(*a)) return false;
    }
    if (e.name_expr && !ParallelSafeExpr(*e.name_expr)) return false;
    for (const PathStep& step : e.steps) {
      for (const ExprPtr& p : step.predicates) {
        if (p && !ParallelSafeExpr(*p)) return false;
      }
    }
    return true;
  }

  bool ParallelSafePredicates(const PathStep& step) {
    for (const ExprPtr& p : step.predicates) {
      if (p && !ParallelSafeExpr(*p)) return false;
    }
    return true;
  }

  LoopLiftConfig cfg_;
  std::unique_ptr<net::ThreadPool> owned_pool_;  ///< when cfg_ asked for one
  net::ThreadPool* pool_ = nullptr;  ///< null in worker clones (serial)
  std::unique_ptr<MorselExecutor> exec_;
  std::unordered_map<const Expr*, bool> parallel_safe_;
  std::vector<std::pair<std::string, Table>> env_;
  std::vector<Scope> scopes_;
  std::vector<BulkRpcTrace> traces_;
  std::unordered_map<const Expr*, bool> hoistable_;
  std::unordered_map<const Expr*, bool> join_invariant_;
  int64_t iter_base_ = 1'000'000;  ///< fresh iteration number source
  int inline_depth_ = 0;
};

// ------------------------- function calls ---------------------------------

StatusOr<Table> LoopLiftedEvaluator::Impl::EvalFunctionCall(const Expr& e,
                                                            const Loop& loop) {
  // xs: constructor functions.
  if (e.name.ns_uri == xml::kXsNs) {
    if (e.children.size() != 1) {
      return Status::TypeError("constructor function takes one argument");
    }
    XRPC_ASSIGN_OR_RETURN(Table v, Eval(*e.children[0], loop));
    XRPC_ASSIGN_OR_RETURN(AtomicType t,
                          xdm::AtomicTypeFromName("xs:" + e.name.local));
    Table out = Table::IterPosItem();
    for (size_t i = 0; i < v.NumRows(); ++i) {
      XRPC_ASSIGN_OR_RETURN(AtomicValue c, v.ItemAt(i).Atomize().CastTo(t));
      out.AppendIPI(v.Iter(i), v.Pos(i), Item(std::move(c)));
    }
    return out;
  }

  // position()/last() resolve against the hidden focus variables.
  if (e.name.ns_uri == xquery::kFnNs && e.children.empty()) {
    if (e.name.local == "position") {
      XRPC_ASSIGN_OR_RETURN(const Table* t, LookupVar(kPositionVar));
      return RestrictToLoop(*t, loop);
    }
    if (e.name.local == "last") {
      XRPC_ASSIGN_OR_RETURN(const Table* t, LookupVar(kLastVar));
      return RestrictToLoop(*t, loop);
    }
  }

  // User-defined functions: inline-expand loop-lifted.
  const xquery::FunctionDef* def = nullptr;
  const xquery::LibraryModule* def_module = nullptr;
  const Scope& scope = scopes_.back();
  for (const xquery::FunctionDef& f : scope.prolog->functions) {
    if (f.name == e.name && f.arity() == e.children.size()) {
      def = &f;
      break;
    }
  }
  if (def == nullptr) {
    auto it = scope.imports_by_ns.find(e.name.ns_uri);
    if (it != scope.imports_by_ns.end()) {
      def = it->second->FindFunction(e.name, e.children.size());
      def_module = it->second;
    }
  }
  if (def != nullptr) {
    if (def->updating) {
      return Status::Unsupported("updating function on the relational path");
    }
    if (++inline_depth_ > cfg_.max_inline_depth) {
      --inline_depth_;
      return Status::Unsupported(
          "recursion beyond inline depth on the relational path");
    }
    std::vector<Table> args;
    Status st = Status::OK();
    for (const ExprPtr& c : e.children) {
      auto a = Eval(*c, loop);
      if (!a.ok()) {
        st = a.status();
        break;
      }
      args.push_back(std::move(a).value());
    }
    StatusOr<Table> result = Status::Internal("uninitialized");
    if (st.ok()) {
      size_t env_mark = env_.size();
      size_t scope_mark = scopes_.size();
      // A fresh frame: only parameters are visible inside the body.
      std::vector<std::pair<std::string, Table>> saved_env;
      saved_env.swap(env_);
      if (def_module != nullptr) {
        auto s = BuildScope(&def_module->prolog, def_module->target_ns);
        if (!s.ok()) {
          st = s.status();
        } else {
          scopes_.push_back(std::move(s).value());
        }
      }
      if (st.ok()) {
        for (size_t i = 0; i < args.size(); ++i) {
          auto coerced = CoerceTable(args[i], def->params[i].type);
          if (!coerced.ok()) {
            st = coerced.status();
            break;
          }
          env_.emplace_back(def->params[i].name.Clark(),
                            std::move(coerced).value());
        }
      }
      if (st.ok()) {
        result = Eval(*def->body, loop);
      }
      env_ = std::move(saved_env);
      env_.resize(env_mark);
      scopes_.resize(scope_mark);
    }
    --inline_depth_;
    XRPC_RETURN_IF_ERROR(st);
    return result;
  }

  if (e.name.ns_uri == xquery::kFnNs || e.name.ns_uri == xml::kXrpcNs) {
    std::vector<Table> args;
    for (const ExprPtr& c : e.children) {
      XRPC_ASSIGN_OR_RETURN(Table a, Eval(*c, loop));
      args.push_back(std::move(a));
    }
    return EvalBuiltin(e, loop, std::move(args));
  }
  return Status::NotFound("unknown function " + e.name.Clark());
}

StatusOr<Table> LoopLiftedEvaluator::Impl::EvalBuiltin(
    const Expr& e, const Loop& loop, std::vector<Table> args) {
  const std::string& f = e.name.local;
  size_t n = args.size();
  Table out = Table::IterPosItem();

  auto groups_of = [](const Table& t) { return GroupByIter(t); };

  if (e.name.ns_uri == xml::kXrpcNs) {
    if ((f == "host" || f == "path") && n == 1) {
      for (size_t i = 0; i < args[0].NumRows(); ++i) {
        std::string url = args[0].ItemAt(i).StringValue();
        std::string result;
        if (StartsWith(url, "xrpc://")) {
          std::string rest = url.substr(7);
          size_t slash = rest.find('/');
          if (f == "host") {
            result = "xrpc://" +
                     (slash == std::string::npos ? rest
                                                 : rest.substr(0, slash));
          } else {
            result = slash == std::string::npos ? "" : rest.substr(slash + 1);
          }
        } else {
          result = f == "host" ? "localhost" : url;
        }
        out.AppendIPI(args[0].Iter(i), 1, Item(AtomicValue::String(result)));
      }
      return out;
    }
    return Status::Unsupported("xrpc:" + f + " on the relational path");
  }

  if (f == "doc" && n == 1) {
    if (cfg_.documents == nullptr) {
      return Status::EvalError("fn:doc: no document provider");
    }
    for (size_t i = 0; i < args[0].NumRows(); ++i) {
      XRPC_ASSIGN_OR_RETURN(
          NodePtr doc,
          cfg_.documents->GetDocument(args[0].ItemAt(i).StringValue()));
      out.AppendIPI(args[0].Iter(i), 1, Item::Node(std::move(doc)));
    }
    return out;
  }
  if (f == "count" && n == 1) {
    auto groups = groups_of(args[0]);
    for (int64_t iter : loop) {
      auto g = groups.find(iter);
      int64_t c = g == groups.end() ? 0 : static_cast<int64_t>(g->second.size());
      out.AppendIPI(iter, 1, Item(AtomicValue::Integer(c)));
    }
    return out;
  }
  if ((f == "empty" || f == "exists") && n == 1) {
    auto groups = groups_of(args[0]);
    for (int64_t iter : loop) {
      bool has = groups.count(iter) > 0 && !groups[iter].empty();
      out.AppendIPI(iter, 1,
                    Item(AtomicValue::Boolean(f == "empty" ? !has : has)));
    }
    return out;
  }
  if ((f == "not" || f == "boolean") && n == 1) {
    auto groups = groups_of(args[0]);
    for (int64_t iter : loop) {
      Sequence seq;
      auto g = groups.find(iter);
      if (g != groups.end()) {
        for (size_t row : g->second) seq.push_back(args[0].ItemAt(row));
      }
      XRPC_ASSIGN_OR_RETURN(bool b, xdm::EffectiveBooleanValue(seq));
      out.AppendIPI(iter, 1, Item(AtomicValue::Boolean(f == "not" ? !b : b)));
    }
    return out;
  }
  if (f == "true" && n == 0) {
    for (int64_t iter : loop) {
      out.AppendIPI(iter, 1, Item(AtomicValue::Boolean(true)));
    }
    return out;
  }
  if (f == "false" && n == 0) {
    for (int64_t iter : loop) {
      out.AppendIPI(iter, 1, Item(AtomicValue::Boolean(false)));
    }
    return out;
  }
  if (f == "string" && n == 1) {
    auto groups = groups_of(args[0]);
    for (int64_t iter : loop) {
      auto g = groups.find(iter);
      std::string s;
      if (g != groups.end() && !g->second.empty()) {
        if (g->second.size() > 1) {
          return Status::TypeError("fn:string: more than one item");
        }
        s = args[0].ItemAt(g->second[0]).StringValue();
      }
      out.AppendIPI(iter, 1, Item(AtomicValue::String(std::move(s))));
    }
    return out;
  }
  if (f == "data" && n == 1) {
    for (size_t i = 0; i < args[0].NumRows(); ++i) {
      out.AppendIPI(args[0].Iter(i), args[0].Pos(i),
                    Item(args[0].ItemAt(i).Atomize()));
    }
    return out;
  }
  if (f == "concat" && n >= 2) {
    std::vector<std::unordered_map<int64_t, std::vector<size_t>>> groups;
    for (const Table& a : args) groups.push_back(GroupByIter(a));
    for (int64_t iter : loop) {
      std::string s;
      for (size_t a = 0; a < n; ++a) {
        auto g = groups[a].find(iter);
        if (g == groups[a].end()) continue;
        if (g->second.size() > 1) {
          return Status::TypeError("fn:concat: non-singleton argument");
        }
        s += args[a].ItemAt(g->second[0]).StringValue();
      }
      out.AppendIPI(iter, 1, Item(AtomicValue::String(std::move(s))));
    }
    return out;
  }
  if (f == "string-join" && (n == 1 || n == 2)) {
    auto groups = groups_of(args[0]);
    auto seps = n == 2 ? GroupByIter(args[1])
                       : std::unordered_map<int64_t, std::vector<size_t>>{};
    for (int64_t iter : loop) {
      std::string sep;
      if (n == 2) {
        auto s = seps.find(iter);
        if (s != seps.end() && !s->second.empty()) {
          sep = args[1].ItemAt(s->second[0]).StringValue();
        }
      }
      std::string joined;
      auto g = groups.find(iter);
      if (g != groups.end()) {
        for (size_t k = 0; k < g->second.size(); ++k) {
          if (k > 0) joined += sep;
          joined += args[0].ItemAt(g->second[k]).StringValue();
        }
      }
      out.AppendIPI(iter, 1, Item(AtomicValue::String(std::move(joined))));
    }
    return out;
  }
  if ((f == "contains" || f == "starts-with" || f == "ends-with") && n == 2) {
    auto lg = groups_of(args[0]);
    auto rg = groups_of(args[1]);
    for (int64_t iter : loop) {
      std::string a, b;
      auto li = lg.find(iter);
      if (li != lg.end() && !li->second.empty()) {
        a = args[0].ItemAt(li->second[0]).StringValue();
      }
      auto ri = rg.find(iter);
      if (ri != rg.end() && !ri->second.empty()) {
        b = args[1].ItemAt(ri->second[0]).StringValue();
      }
      bool v = f == "contains"
                   ? a.find(b) != std::string::npos
                   : (f == "starts-with" ? StartsWith(a, b) : EndsWith(a, b));
      out.AppendIPI(iter, 1, Item(AtomicValue::Boolean(v)));
    }
    return out;
  }
  if ((f == "sum" || f == "avg" || f == "min" || f == "max") && n >= 1) {
    auto groups = groups_of(args[0]);
    for (int64_t iter : loop) {
      auto g = groups.find(iter);
      if (g == groups.end() || g->second.empty()) {
        if (f == "sum") out.AppendIPI(iter, 1, Item(AtomicValue::Integer(0)));
        continue;
      }
      bool all_int = true;
      double acc = 0;
      int64_t iacc = 0;
      double mn = std::numeric_limits<double>::infinity();
      double mx = -std::numeric_limits<double>::infinity();
      for (size_t row : g->second) {
        AtomicValue v = args[0].ItemAt(row).Atomize();
        if (v.type() != AtomicType::kInteger) all_int = false;
        double d = v.AsDouble();
        acc += d;
        iacc += v.AsInteger();
        mn = std::min(mn, d);
        mx = std::max(mx, d);
      }
      if (f == "sum") {
        out.AppendIPI(iter, 1,
                      all_int ? Item(AtomicValue::Integer(iacc))
                              : Item(AtomicValue::Double(acc)));
      } else if (f == "avg") {
        out.AppendIPI(iter, 1,
                      Item(AtomicValue::Double(
                          acc / static_cast<double>(g->second.size()))));
      } else {
        double v = f == "min" ? mn : mx;
        out.AppendIPI(iter, 1,
                      all_int ? Item(AtomicValue::Integer(
                                    static_cast<int64_t>(v)))
                              : Item(AtomicValue::Double(v)));
      }
    }
    return out;
  }
  if (f == "distinct-values" && n >= 1) {
    auto groups = groups_of(args[0]);
    for (int64_t iter : loop) {
      auto g = groups.find(iter);
      if (g == groups.end()) continue;
      std::vector<AtomicValue> seen;
      int64_t pos = 0;
      for (size_t row : g->second) {
        AtomicValue v = args[0].ItemAt(row).Atomize();
        bool dup = false;
        for (const AtomicValue& s : seen) {
          auto cmp = xdm::CompareAtomic(v, s);
          if (cmp.ok() && cmp.value() == 0) {
            dup = true;
            break;
          }
        }
        if (!dup) {
          seen.push_back(v);
          out.AppendIPI(iter, ++pos, Item(std::move(v)));
        }
      }
    }
    return out;
  }
  if ((f == "zero-or-one" || f == "exactly-one" || f == "one-or-more") &&
      n == 1) {
    auto groups = groups_of(args[0]);
    for (int64_t iter : loop) {
      size_t c = groups.count(iter) > 0 ? groups[iter].size() : 0;
      if (f == "zero-or-one" && c > 1) {
        return Status::TypeError("fn:zero-or-one: more than one (FORG0003)");
      }
      if (f == "exactly-one" && c != 1) {
        return Status::TypeError("fn:exactly-one: not one item (FORG0005)");
      }
      if (f == "one-or-more" && c == 0) {
        return Status::TypeError("fn:one-or-more: empty (FORG0004)");
      }
    }
    return args[0];
  }
  if ((f == "name" || f == "local-name") && n == 1) {
    for (size_t i = 0; i < args[0].NumRows(); ++i) {
      const Item& item = args[0].ItemAt(i);
      if (!item.IsNode()) return Status::TypeError("fn:" + f + ": not a node");
      out.AppendIPI(args[0].Iter(i), 1,
                    Item(AtomicValue::String(f == "name"
                                                 ? item.node()->name().Lexical()
                                                 : item.node()->name().local)));
    }
    return out;
  }
  if (f == "number" && n <= 1) {
    if (n == 1) {
      auto groups = groups_of(args[0]);
      for (int64_t iter : loop) {
        double d = std::numeric_limits<double>::quiet_NaN();
        auto g = groups.find(iter);
        if (g != groups.end() && !g->second.empty()) {
          d = args[0].ItemAt(g->second[0]).Atomize().AsDouble();
        }
        out.AppendIPI(iter, 1, Item(AtomicValue::Double(d)));
      }
      return out;
    }
  }
  if (f == "error") {
    return Status::EvalError(n > 0 && args[n - 1].NumRows() > 0
                                 ? args[n - 1].ItemAt(0).StringValue()
                                 : "fn:error called");
  }

  return Status::Unsupported("built-in fn:" + f + "#" + std::to_string(n) +
                             " on the relational path");
}

// ------------------------- execute at (Figure 2) ---------------------------

StatusOr<Table> LoopLiftedEvaluator::Impl::EvalExecuteAt(const Expr& e,
                                                         const Loop& loop) {
  if (cfg_.rpc == nullptr) {
    return Status::EvalError("no Bulk RPC channel configured");
  }
  // dst: iter|pos|item (one destination string per iteration).
  XRPC_ASSIGN_OR_RETURN(Table dst, Eval(*e.children[0], loop));
  XRPC_ASSIGN_OR_RETURN(auto dst_map, AtomizedSingletons(dst, "execute at"));

  // Parameter tables under the same loop.
  std::vector<Table> params;
  for (size_t i = 1; i < e.children.size(); ++i) {
    XRPC_ASSIGN_OR_RETURN(Table p, Eval(*e.children[i], loop));
    params.push_back(SortIPI(p));
  }
  size_t arity = params.size();

  // Module metadata for the request.
  const Scope& scope = scopes_.back();
  std::string location;
  auto loc = scope.location_by_ns.find(e.name.ns_uri);
  if (loc != scope.location_by_ns.end()) location = loc->second;
  bool updating = false;
  auto imp = scope.imports_by_ns.find(e.name.ns_uri);
  if (imp != scope.imports_by_ns.end()) {
    const xquery::FunctionDef* def =
        imp->second->FindFunction(e.name, arity);
    if (def != nullptr) updating = def->updating;
  }

  // Parameter groups are needed both for request assembly and for
  // partition-key routing, so compute them up front.
  auto param_groups =
      std::vector<std::unordered_map<int64_t, std::vector<size_t>>>();
  for (const Table& p : params) param_groups.push_back(GroupByIter(p));

  // Traces present iterations as their rank within this loop scope
  // (1..n), matching Figure 1's presentation.
  BulkRpcTrace trace;
  std::map<int64_t, int64_t> trace_rank;
  auto normalize = [&trace_rank](const Table& t) {
    Table out = Table::IterPosItem();
    for (size_t i = 0; i < t.NumRows(); ++i) {
      auto r = trace_rank.find(t.Iter(i));
      out.AppendIPI(r == trace_rank.end() ? t.Iter(i) : r->second, t.Pos(i),
                    t.ItemAt(i));
    }
    return out;
  };
  if (cfg_.trace_bulk_rpc) {
    for (size_t i = 0; i < loop.size(); ++i) {
      trace_rank[loop[i]] = static_cast<int64_t>(i + 1);
    }
    trace.dst = normalize(dst);
  }

  // Decompose, dispatch, merge — re-run at most once more after a
  // StaleCatalog fence: a peer that rejected a subcall did so because the
  // catalog changed between our decomposition and its admission check, so
  // re-reading the shard map (Snapshot below) and re-routing yields a
  // correct answer instead of a wrong or partial one (DESIGN.md §14).
  for (int attempt = 0;; ++attempt) {
    // Physical calls per iteration, after catalog decomposition (DESIGN.md
    // §13). A plain destination stays one (group, rank 0) call — δ on
    // dst.item in first-appearance order, as before. A logical
    // "shard:<collection>" destination expands against the catalog: when
    // the collection's routing parameter is bound to a singleton in this
    // iteration, the call is PRUNED to the single shard owning that key
    // (the semijoin case — the predicate binds the partition key);
    // otherwise it broadcasts one call to EVERY shard and the
    // scatter-gather merge recombines the per-shard sequences in shard
    // order via `rank`. Calls are grouped per SHARD (not per peer): each
    // shard-routed Bulk RPC carries an xrpc:shard scope pinning the exact
    // fragment it reads plus the catalog version it was routed by, and a
    // replica peer may hold several fragments of one collection — so two
    // shards co-located on one peer need two scoped requests.
    struct PeerCall {
      int64_t iter;
      int rank;  ///< shard rank of this call's results within its iteration
    };
    struct Group {
      std::string primary;                  ///< destination peer URI
      std::vector<std::string> fallbacks;   ///< replica peers (failover)
      std::optional<soap::XrpcRequest::ShardScope> scope;
      /// Replica copy of an updating call (all-copies write, DESIGN.md
      /// §17): executes and enlists in the 2PC like any group, but its
      /// result sequences are dropped by the scatter-gather merge.
      bool echo = false;
      std::vector<PeerCall> calls;
    };
    std::vector<std::string> group_keys;
    std::map<std::string, Group> groups;
    // One Snapshot per collection per attempt: the routing below iterates
    // a COPY of the shard map, immune to concurrent re-registration.
    std::map<std::string, std::pair<core::ShardedCollection, int64_t>>
        snapshots;
    int max_rank = 0;
    auto add_call = [&](const std::string& key, const std::string& primary,
                        std::vector<std::string> fallbacks,
                        std::optional<soap::XrpcRequest::ShardScope> scope,
                        int64_t iter, int rank, bool echo) {
      auto it = groups.find(key);
      if (it == groups.end()) {
        group_keys.push_back(key);
        it = groups
                 .emplace(key, Group{primary, std::move(fallbacks),
                                     std::move(scope), echo, {}})
                 .first;
      }
      it->second.calls.push_back({iter, rank});
      if (rank > max_rank) max_rank = rank;
    };
    for (int64_t iter : loop) {
      auto d = dst_map.find(iter);
      if (d == dst_map.end()) {
        return Status::EvalError(
            "execute at: empty destination in iteration " +
            std::to_string(iter));
      }
      std::string dest = d->second.ToString();
      if (!core::Catalog::IsShardUri(dest)) {
        add_call(dest, dest, {}, std::nullopt, iter, 0, /*echo=*/false);
        continue;
      }
      if (cfg_.catalog == nullptr) {
        return Status::EvalError(
            "no peer catalog configured for destination " + dest);
      }
      std::string name(core::Catalog::CollectionOf(dest));
      auto snap = snapshots.find(name);
      if (snap == snapshots.end()) {
        core::ShardedCollection copy;
        int64_t version = 0;
        if (!cfg_.catalog->Snapshot(name, &copy, &version) ||
            copy.shards.empty()) {
          return Status::EvalError("unknown sharded collection: " + dest);
        }
        snap = snapshots.emplace(name, std::make_pair(std::move(copy), version))
                   .first;
      }
      const core::ShardedCollection& collection = snap->second.first;
      const int64_t version = snap->second.second;
      int routed = -1;
      if (collection.route_param >= 0 &&
          collection.route_param < static_cast<int>(arity)) {
        const auto& pgroups = param_groups[collection.route_param];
        auto g = pgroups.find(iter);
        if (g != pgroups.end() && g->second.size() == 1) {
          const Item& key =
              params[collection.route_param].ItemAt(g->second[0]);
          auto r =
              cfg_.catalog->RouteKey(collection, key.Atomize().ToString());
          // An unroutable key (e.g. outside every range) is not an error
          // here — the call simply cannot be pruned and broadcasts.
          if (r.ok()) routed = r.value();
        }
      }
      auto shard_call = [&](const core::ShardInfo& s, int rank) {
        soap::XrpcRequest::ShardScope scope{
            collection.name, s.index, version,
            cfg_.catalog->FragmentDataVersion(collection.name, s.index)};
        const std::string key = dest + "#" + std::to_string(s.index);
        if (updating) {
          // All-copies write (DESIGN.md §17): every copy of a touched shard
          // receives the same scoped calls and enlists in the 2PC, so a
          // commit lands on primary and replicas alike. The replica groups
          // are echoes — their results are dropped by the merge — and no
          // copy gets fallbacks: at-most-once forbids re-issuing an update
          // elsewhere, so a dead copy aborts the transaction instead.
          add_call(key, s.peer_uri, {}, scope, iter, rank, /*echo=*/false);
          for (const std::string& replica : s.replicas) {
            add_call(key + "@" + replica, replica, {}, scope, iter, rank,
                     /*echo=*/true);
          }
        } else {
          add_call(key, s.peer_uri, s.replicas, scope, iter, rank,
                   /*echo=*/false);
        }
      };
      if (routed >= 0) {
        shard_call(collection.shards[routed], 0);
      } else {
        for (const core::ShardInfo& s : collection.shards) {
          shard_call(s, s.index);
        }
      }
    }

    // Per group: the map table iter<->iterp (ρ renumbering), the per-param
    // request tables req_p^i, and the Bulk RPC request.
    struct GroupWork {
      std::string peer;
      bool echo = false;            ///< replica echo: results dropped
      std::vector<PeerCall> calls;  // index = iterp - 1
    };
    // Request assembly fills one slot per destination group, so the groups
    // are morsel work (the per-iteration body of the lifted `execute at`):
    // every read below (params, param_groups, scope metadata) is shared
    // immutable state, and each worker writes only its own slot. Tracing
    // reads trace_rank through a mutating map lookup, so traced runs stay
    // serial — identical slots, identical bytes.
    std::vector<GroupWork> work(group_keys.size());
    std::vector<server::BulkRpcChannel::Destination> destinations(
        group_keys.size());
    if (cfg_.trace_bulk_rpc) {
      trace.peers.clear();
      trace.peers.resize(group_keys.size());
    }
    auto assemble = [&](size_t gi) -> Status {
      Group& group = groups.find(group_keys[gi])->second;
      GroupWork& w = work[gi];
      w.peer = group.primary;
      w.echo = group.echo;
      soap::XrpcRequest request;
      request.module_ns = e.name.ns_uri;
      request.method = e.name.local;
      request.location = location;
      request.arity = arity;
      request.updating = updating;
      request.shard = group.scope;
      BulkRpcTrace::PerPeer tp;
      tp.peer = group.primary;
      tp.map = algebra::LiteralTable({"iter", "iterp"}, {});
      tp.req.resize(arity, Table::IterPosItem());
      for (const PeerCall& pc : group.calls) {
        int64_t iter = pc.iter;
        int64_t iterp = static_cast<int64_t>(w.calls.size()) + 1;
        w.calls.push_back(pc);
        std::vector<Sequence> call;
        for (size_t p = 0; p < arity; ++p) {
          Sequence param;
          auto g = param_groups[p].find(iter);
          if (g != param_groups[p].end()) {
            for (size_t row : g->second) {
              param.push_back(params[p].ItemAt(row));
            }
          }
          if (cfg_.trace_bulk_rpc) {
            for (size_t k = 0; k < param.size(); ++k) {
              tp.req[p].AppendIPI(iterp, static_cast<int64_t>(k + 1),
                                  param[k]);
            }
          }
          call.push_back(std::move(param));
        }
        request.calls.push_back(std::move(call));
        if (cfg_.trace_bulk_rpc) {
          tp.map.AppendRow({Cell::Int(trace_rank[iter]), Cell::Int(iterp)});
        }
      }
      destinations[gi] = server::BulkRpcChannel::Destination{
          group.primary, std::move(request), std::move(group.fallbacks)};
      if (cfg_.trace_bulk_rpc) trace.peers[gi] = std::move(tp);
      return Status::OK();
    };
    if (!cfg_.trace_bulk_rpc && exec_->parallel_capable() &&
        group_keys.size() > 1) {
      XRPC_RETURN_IF_ERROR(
          exec_->Run("execute-at", group_keys.size(), assemble));
    } else {
      for (size_t gi = 0; gi < group_keys.size(); ++gi) {
        XRPC_RETURN_IF_ERROR(assemble(gi));
      }
    }

    // Dispatch all Bulk RPC requests (possibly in parallel).
    auto responses_or = cfg_.rpc->ExecuteBulkAll(std::move(destinations));
    if (!responses_or.ok()) {
      // Updating calls never re-dispatch: destinations that accepted the
      // first attempt already staged the call into their isolation session
      // (the deferred PUL accumulates per queryID), so a re-route would
      // stage — and later commit — every such call twice. The fence aborts
      // the updating query instead; nothing was applied (presumed abort
      // expires the staged sessions) and the client may retry under a
      // fresh queryID.
      if (responses_or.status().code() == StatusCode::kStaleCatalog &&
          attempt == 0 && !updating) {
        cfg_.rpc->NoteStaleReroute();
        continue;  // refetch the shard map and re-route, exactly once
      }
      return responses_or.status();
    }
    std::vector<soap::XrpcResponse> responses =
        std::move(responses_or).value();
    if (responses.size() != work.size()) {
      return Status::Internal("bulk channel returned wrong response count");
    }

    // Map iterp back to iter, bucket each call's sequence by its shard
    // rank, and recombine with the order-preserving scatter-gather merge:
    // within each iteration, rank order then per-call sequence order, pos
    // renumbered densely, whole table sorted by iter. For plain (unsharded)
    // destinations every call has rank 0 and this degenerates to the
    // original merge-union + sort of Figure 2, byte for byte.
    // Response unpacking is per-response morsel work: worker w buckets its
    // own response's sequences into unpacked[w][rank]; the serial merge
    // below concatenates buckets in response order per rank — exactly the
    // row order the serial loop produced. The earliest response's fault
    // wins, matching serial first-failure.
    std::vector<std::vector<Table>> unpacked(
        work.size(), std::vector<Table>(static_cast<size_t>(max_rank) + 1,
                                        Table::IterPosItem()));
    auto unpack = [&](size_t w) -> Status {
      const soap::XrpcResponse& response = responses[w];
      if (response.results.size() != work[w].calls.size()) {
        return Status::SoapFault("peer " + work[w].peer + " answered " +
                                 std::to_string(response.results.size()) +
                                 " results for " +
                                 std::to_string(work[w].calls.size()) +
                                 " calls");
      }
      // A replica echo of an all-copies write answered (and is enlisted in
      // the 2PC); only the primary's results feed the merge.
      if (work[w].echo) return Status::OK();
      for (size_t k = 0; k < response.results.size(); ++k) {
        const PeerCall& pc = work[w].calls[k];
        const Sequence& seq = response.results[k];
        for (size_t i = 0; i < seq.size(); ++i) {
          unpacked[w][static_cast<size_t>(pc.rank)].AppendIPI(
              pc.iter, static_cast<int64_t>(i + 1), seq[i]);
        }
        if (cfg_.trace_bulk_rpc) {
          for (size_t i = 0; i < seq.size(); ++i) {
            trace.peers[w].msg.AppendIPI(static_cast<int64_t>(k + 1),
                                         static_cast<int64_t>(i + 1), seq[i]);
            trace.peers[w].res.AppendIPI(trace_rank[pc.iter],
                                         static_cast<int64_t>(i + 1), seq[i]);
          }
        }
      }
      return Status::OK();
    };
    if (!cfg_.trace_bulk_rpc && exec_->parallel_capable() &&
        work.size() > 1) {
      XRPC_RETURN_IF_ERROR(exec_->Run("execute-at", work.size(), unpack));
    } else {
      for (size_t w = 0; w < work.size(); ++w) {
        XRPC_RETURN_IF_ERROR(unpack(w));
      }
    }
    std::vector<Table> shard_sources(static_cast<size_t>(max_rank) + 1,
                                     Table::IterPosItem());
    for (size_t w = 0; w < unpacked.size(); ++w) {
      for (size_t rank = 0; rank < unpacked[w].size(); ++rank) {
        shard_sources[rank].AppendRowsFrom(std::move(unpacked[w][rank]));
      }
    }
    Table result = algebra::ScatterGatherMerge(shard_sources);
    if (cfg_.trace_bulk_rpc) {
      for (auto& tp : trace.peers) {
        tp.msg = SortIPI(tp.msg);
        tp.res = SortIPI(tp.res);
      }
      trace.result = normalize(result);
      traces_.push_back(std::move(trace));
    }
    return result;
  }
}

// ------------------------- constructors ------------------------------------

StatusOr<Table> LoopLiftedEvaluator::Impl::EvalConstructor(const Expr& e,
                                                           const Loop& loop) {
  // Content tables are evaluated loop-lifted; node assembly is per iter.
  switch (e.kind) {
    case ExprKind::kElementCtor: {
      std::map<int64_t, xml::QName> names;
      if (e.name_expr != nullptr) {
        XRPC_ASSIGN_OR_RETURN(Table nt, Eval(*e.name_expr, loop));
        XRPC_ASSIGN_OR_RETURN(auto nm, AtomizedSingletons(nt, "element name"));
        for (auto& [iter, v] : nm) names[iter] = xml::QName(v.ToString());
      }
      // Attribute value tables.
      struct AttrWork {
        const Expr* attr;
        std::vector<Table> parts;
      };
      std::vector<AttrWork> attrs;
      for (const ExprPtr& a : e.attributes) {
        AttrWork w;
        w.attr = a.get();
        for (const ExprPtr& c : a->children) {
          XRPC_ASSIGN_OR_RETURN(Table t, Eval(*c, loop));
          w.parts.push_back(SortIPI(t));
        }
        attrs.push_back(std::move(w));
      }
      // Content tables.
      std::vector<std::pair<const Expr*, Table>> content;
      for (const ExprPtr& c : e.children) {
        if (c->kind == ExprKind::kTextCtor && c->children.empty()) {
          content.emplace_back(c.get(), Table::IterPosItem());  // literal text
          continue;
        }
        XRPC_ASSIGN_OR_RETURN(Table t, Eval(*c, loop));
        content.emplace_back(c.get(), SortIPI(t));
      }
      Table out = Table::IterPosItem();
      for (int64_t iter : loop) {
        xml::QName name = e.name;
        auto ni = names.find(iter);
        if (ni != names.end()) name = ni->second;
        NodePtr elem = Node::NewElement(name);
        for (const AttrWork& w : attrs) {
          std::string value;
          bool first_enclosed = true;
          for (size_t p = 0; p < w.parts.size(); ++p) {
            const Expr* part_expr = w.attr->children[p].get();
            if (part_expr->kind == ExprKind::kLiteral) {
              value += part_expr->literal.ToString();
              continue;
            }
            (void)first_enclosed;
            bool first = true;
            for (size_t row = 0; row < w.parts[p].NumRows(); ++row) {
              if (w.parts[p].Iter(row) != iter) continue;
              if (!first) value += " ";
              value += w.parts[p].ItemAt(row).StringValue();
              first = false;
            }
          }
          elem->SetAttribute(Node::NewAttribute(w.attr->name, value));
        }
        for (auto& [expr, table] : content) {
          if (expr->kind == ExprKind::kTextCtor && expr->children.empty()) {
            elem->AppendChild(Node::NewText(expr->literal.ToString()));
            continue;
          }
          Sequence items;
          for (size_t row = 0; row < table.NumRows(); ++row) {
            if (table.Iter(row) == iter) items.push_back(table.ItemAt(row));
          }
          std::string pending;
          bool has_pending = false;
          for (const Item& item : items) {
            if (item.IsAtomic()) {
              if (has_pending) pending += " ";
              pending += item.atomic().ToString();
              has_pending = true;
              continue;
            }
            if (has_pending) {
              elem->AppendChild(Node::NewText(pending));
              pending.clear();
              has_pending = false;
            }
            const Node* node = item.node();
            if (node->kind() == NodeKind::kAttribute) {
              elem->SetAttribute(node->Clone());
            } else if (node->kind() == NodeKind::kDocument) {
              for (const NodePtr& c : node->children()) {
                elem->AppendChild(c->Clone());
              }
            } else {
              elem->AppendChild(node->Clone());
            }
          }
          if (has_pending && !pending.empty()) {
            elem->AppendChild(Node::NewText(pending));
          }
        }
        out.AppendIPI(iter, 1, Item::Node(std::move(elem)));
      }
      return out;
    }
    case ExprKind::kTextCtor: {
      if (e.children.empty()) {
        Table out = Table::IterPosItem();
        for (int64_t iter : loop) {
          out.AppendIPI(iter, 1,
                        Item::Node(Node::NewText(e.literal.ToString())));
        }
        return out;
      }
      XRPC_ASSIGN_OR_RETURN(Table t, Eval(*e.children[0], loop));
      auto groups = GroupByIter(SortIPI(t));
      Table out = Table::IterPosItem();
      for (int64_t iter : loop) {
        auto g = groups.find(iter);
        if (g == groups.end() || g->second.empty()) continue;
        std::string text;
        for (size_t k = 0; k < g->second.size(); ++k) {
          if (k > 0) text += " ";
          text += t.ItemAt(g->second[k]).StringValue();
        }
        out.AppendIPI(iter, 1, Item::Node(Node::NewText(std::move(text))));
      }
      return out;
    }
    default:
      return Status::Unsupported(
          "this constructor kind on the relational path");
  }
}

// ===========================================================================

LoopLiftedEvaluator::LoopLiftedEvaluator(const LoopLiftConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}

LoopLiftedEvaluator::~LoopLiftedEvaluator() = default;

StatusOr<xdm::Sequence> LoopLiftedEvaluator::EvaluateQuery(
    const xquery::MainModule& query) {
  return impl_->EvaluateQuery(query);
}

StatusOr<algebra::Table> LoopLiftedEvaluator::EvaluateFunctionBulk(
    const xquery::LibraryModule& module, const xquery::FunctionDef& def,
    const std::vector<algebra::Table>& args, int64_t num_calls) {
  return impl_->EvaluateFunctionBulk(module, def, args, num_calls);
}

const std::vector<BulkRpcTrace>& LoopLiftedEvaluator::traces() const {
  return impl_->traces();
}

}  // namespace xrpc::compiler
