#ifndef XRPC_COMPILER_MORSEL_EXEC_H_
#define XRPC_COMPILER_MORSEL_EXEC_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "base/cancellation.h"
#include "base/status.h"
#include "net/rpc_metrics.h"
#include "net/thread_pool.h"

namespace xrpc::compiler {

/// The operator-level execution interface of the morsel-parallel executor
/// (DESIGN.md §15). A per-iteration-independent operator presents its work
/// as `num_morsels` independent chunks plus a body callable writing into a
/// per-morsel output slot; the executor decides serial vs parallel, polls
/// the CancellationToken at EVERY morsel boundary (in both modes), and
/// reports failures deterministically: the lowest-index non-OK status —
/// which, with in-order morsels, is exactly the failure serial execution
/// would have hit first.
///
/// Bodies scheduled onto the pool must not block on the same pool
/// (ThreadPool re-entrancy rule); the loop-lifted evaluator guarantees
/// this by giving its morsel-worker clones no pool, so nested operators
/// inside a worker degrade to serial.
class MorselExecutor {
 public:
  /// `pool`: null = always serial. `cancel`: polled at morsel boundaries
  /// (null = never cancelled). `metrics`: receives one RecordExecOp per
  /// Run plus per-morsel times (null = no recording).
  MorselExecutor(net::ThreadPool* pool, const CancellationToken* cancel,
                 net::RpcMetrics* metrics)
      : pool_(pool), cancel_(cancel), metrics_(metrics) {}

  /// True when Run() may actually fan out.
  bool parallel_capable() const { return pool_ != nullptr && pool_->size() > 1; }

  /// Runs body(m) for every m in [0, num_morsels), on the pool when one is
  /// attached and there is more than one morsel, serially otherwise.
  /// Returns the lowest-index non-OK status, or the cancellation trip
  /// status if the token fired. `op` tags the exec metrics line.
  Status Run(const char* op, size_t num_morsels,
             const std::function<Status(size_t)>& body);

 private:
  net::ThreadPool* pool_;
  const CancellationToken* cancel_;
  net::RpcMetrics* metrics_;
};

}  // namespace xrpc::compiler

#endif  // XRPC_COMPILER_MORSEL_EXEC_H_
