#include "net/thread_pool.h"

#include <algorithm>

namespace xrpc::net {

ThreadPool::ThreadPool(int threads) {
  threads = std::max(1, threads);
  threads_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

int64_t ThreadPool::peak_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_in_flight_;
}

int64_t ThreadPool::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain remaining work even when stopping: destructor-submitted-before
      // tasks carry promises the submitter is waiting on.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
  }
}

}  // namespace xrpc::net
