#include "net/thread_pool.h"

#include <algorithm>

namespace xrpc::net {

ThreadPool::ThreadPool(int threads) {
  threads = std::max(1, threads);
  threads_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

int64_t ThreadPool::peak_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_in_flight_;
}

int64_t ThreadPool::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

int64_t ThreadPool::uncaught_exceptions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return uncaught_exceptions_;
}

std::exception_ptr ThreadPool::TakeUncaughtException() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_exceptions_.empty()) return nullptr;
  std::exception_ptr e = pending_exceptions_.front();
  pending_exceptions_.pop_front();
  return e;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain remaining work even when stopping: destructor-submitted-before
      // tasks carry promises the submitter is waiting on.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
    }
    // A throw out of task() would unwind the worker thread and terminate the
    // process (std::thread with an active exception); catch here, keep the
    // worker alive, and retain the exception for the submitter.
    std::exception_ptr thrown;
    try {
      task();
    } catch (...) {
      thrown = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (thrown) {
        ++uncaught_exceptions_;
        pending_exceptions_.push_back(std::move(thrown));
      }
    }
  }
}

void TaskGroup::Run(std::function<void()> fn) {
  const size_t index = next_index_++;
  if (pool_ == nullptr) {
    exceptions_.resize(next_index_);
    try {
      fn();
    } catch (...) {
      exceptions_[index] = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    exceptions_.resize(next_index_);
    ++outstanding_;
  }
  pool_->Submit([this, index, fn = std::move(fn)] {
    std::exception_ptr thrown;
    try {
      fn();
    } catch (...) {
      thrown = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (thrown) exceptions_[index] = std::move(thrown);
      --outstanding_;
      // Notify UNDER the lock: once Wait() observes outstanding_ == 0 the
      // caller may destroy this group, so the condvar must not be touched
      // after the unlock (TSan-verified destroy race otherwise).
      done_cv_.notify_all();
    }
  });
}

std::exception_ptr TaskGroup::Wait() {
  if (pool_ != nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return outstanding_ == 0; });
  }
  std::exception_ptr first;
  for (std::exception_ptr& e : exceptions_) {
    if (e != nullptr) {
      first = std::move(e);
      break;
    }
  }
  exceptions_.clear();
  next_index_ = 0;
  return first;
}

}  // namespace xrpc::net
