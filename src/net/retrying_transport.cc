#include "net/retrying_transport.h"

#include <algorithm>
#include <cmath>

#include "base/string_util.h"

namespace xrpc::net {

bool RetryingTransport::IsUpdatingEnvelope(const std::string& body) {
  // The SOAP codec emits the XQUF marker as an attribute of xrpc:request;
  // both quote styles are accepted on the wire.
  return body.find("updCall=\"true\"") != std::string::npos ||
         body.find("updCall='true'") != std::string::npos;
}

std::optional<int64_t> RetryingTransport::ExtractDeadlineMicros(
    const std::string& body) {
  // Cheap substring sniff of the serialized envelope, mirroring
  // IsUpdatingEnvelope: the transport must not pay for a full XML parse on
  // every attempt. The authoritative validation lives in ParseRequest.
  size_t tag = body.find("<xrpc:deadline");
  if (tag == std::string::npos) return std::nullopt;
  size_t open_end = body.find('>', tag);
  if (open_end == std::string::npos) return std::nullopt;
  size_t close = body.find('<', open_end + 1);
  if (close == std::string::npos) return std::nullopt;
  auto value = ParseInt64(body.substr(open_end + 1, close - open_end - 1));
  if (!value.ok() || *value < 0) return std::nullopt;
  return *value;
}

int64_t RetryingTransport::BackoffMicros(int retry) {
  double base = static_cast<double>(policy_.initial_backoff_us) *
                std::pow(policy_.backoff_multiplier, retry - 1);
  base = std::min(base, static_cast<double>(policy_.max_backoff_us));
  if (policy_.jitter_fraction > 0) {
    double draw;
    {
      std::lock_guard<std::mutex> lock(prng_mu_);
      draw = prng_.NextDouble();
    }
    base *= 1.0 + policy_.jitter_fraction * (2.0 * draw - 1.0);
  }
  return std::max<int64_t>(0, static_cast<int64_t>(base));
}

StatusOr<PostResult> RetryingTransport::Post(const std::string& dest_uri,
                                             const std::string& body) {
  const bool updating = IsUpdatingEnvelope(body);
  const std::optional<int64_t> budget = ExtractDeadlineMicros(body);
  const int max_attempts = std::max(1, policy_.max_attempts);
  // Backoff waits are part of the exchange's wire-level elapsed time; they
  // are accumulated into the returned network_micros so that critical-path
  // accounting (Table 4) sees the true cost of a flaky link.
  int64_t backoff_total = 0;
  // Budget accounting: spent_modeled sums the modeled wire time of failed
  // attempts plus backoffs. Inside a virtual-time parallel group the
  // simulated clock is frozen per-Post, so the injected now() alone would
  // under-count; on a real transport spent_modeled alone would miss local
  // processing time. The spend is the max of both views.
  int64_t spent_modeled = 0;
  const int64_t start_us = (budget.has_value() && now_) ? now_() : 0;
  auto spent_us = [&]() -> int64_t {
    int64_t spent = spent_modeled;
    if (now_) spent = std::max(spent, now_() - start_us);
    return spent;
  };
  Status last_error = Status::NetworkError("no attempt made");

  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    // Per-attempt timeout: the policy deadline capped by what is left of
    // the end-to-end budget. Across all attempts the budget is never
    // exceeded, and exhaustion is final (kDeadlineExceeded, not retried).
    // This check MUST precede breaker_->Allow(): every caller Allow()
    // admits is committed to reporting an outcome, and an early return
    // here after being admitted as the half-open probe would leave the
    // probe slot occupied forever, permanently short-circuiting the peer.
    int64_t effective_timeout_us = policy_.request_timeout_us;
    bool budget_bound = false;
    if (budget.has_value()) {
      const int64_t remaining = *budget - spent_us();
      if (remaining <= 0) {
        if (metrics_) metrics_->RecordDeadlineExceeded(dest_uri);
        return Status::DeadlineExceeded(
            "budget of " + std::to_string(*budget) + "us toward " + dest_uri +
            " exhausted after " + std::to_string(spent_us()) + "us");
      }
      if (effective_timeout_us <= 0 || remaining < effective_timeout_us) {
        effective_timeout_us = remaining;
        budget_bound = true;
      }
    }

    if (breaker_ != nullptr && !breaker_->Allow(dest_uri)) {
      // Open circuit: fail locally, no dial. (Allow() already counted the
      // short circuit.) Distinct from a transport failure so callers can
      // tell "refused locally" from "tried and failed".
      last_error =
          Status::NetworkError("circuit open: refusing to dial " + dest_uri);
      break;
    }

    auto result = inner_->Post(dest_uri, body);

    bool timed_out = false;
    if (result.ok() && effective_timeout_us > 0 &&
        result->network_micros > effective_timeout_us) {
      // The reply arrived past the deadline: the caller has already given
      // up on this attempt, so the reply is discarded (its content must not
      // be used — that would resurrect an abandoned request).
      timed_out = true;
      spent_modeled += result->network_micros;
      if (metrics_) metrics_->RecordTimeout(dest_uri);
      std::string msg = "request timed out after " +
                        std::to_string(result->network_micros) +
                        "us (deadline " +
                        std::to_string(effective_timeout_us) + "us)";
      if (budget_bound) {
        if (metrics_) metrics_->RecordDeadlineExceeded(dest_uri);
        result = Status::DeadlineExceeded(std::move(msg));
      } else {
        result = Status::NetworkError(std::move(msg));
      }
    }

    if (result.ok()) {
      if (breaker_ != nullptr) breaker_->RecordSuccess(dest_uri);
      result->network_micros += backoff_total;
      if (metrics_) {
        metrics_->RecordClientRequest(dest_uri, body.size(),
                                      result->body.size(),
                                      result->network_micros, /*ok=*/true);
      }
      return result;
    }

    last_error = result.status();
    if (metrics_) {
      metrics_->RecordClientRequest(dest_uri, body.size(), 0, 0,
                                    /*ok=*/false);
    }
    if (breaker_ != nullptr) {
      // Transport failures and timeout-abandoned replies age the breaker;
      // any other terminal status means the peer answered (a SOAP Fault is
      // an alive peer), which resets its consecutive-failure streak.
      if (timed_out || last_error.code() == StatusCode::kNetworkError) {
        breaker_->RecordFailure(dest_uri);
      } else {
        breaker_->RecordSuccess(dest_uri);
      }
    }

    // Only transport-level failures are transient; and an updating envelope
    // is never retransmitted once it may have reached the destination
    // (at-most-once, Section 4.4).
    if (last_error.code() != StatusCode::kNetworkError || updating ||
        attempt == max_attempts) {
      break;
    }

    int64_t backoff = BackoffMicros(attempt);
    if (budget.has_value() && spent_us() + backoff >= *budget) {
      // The backoff wait alone would cross the deadline: give up now
      // rather than sleep past it and fail on the next loop iteration.
      if (metrics_) metrics_->RecordDeadlineExceeded(dest_uri);
      return Status::DeadlineExceeded(
          "budget of " + std::to_string(*budget) + "us toward " + dest_uri +
          " exhausted after " + std::to_string(spent_us()) +
          "us (next backoff " + std::to_string(backoff) + "us)");
    }
    backoff_total += backoff;
    spent_modeled += backoff;
    if (metrics_) {
      metrics_->RecordRetry(dest_uri);
      metrics_->RecordBackoff(backoff);
    }
    if (sleep_) sleep_(backoff);
  }
  return last_error;
}

}  // namespace xrpc::net
