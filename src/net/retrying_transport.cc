#include "net/retrying_transport.h"

#include <algorithm>
#include <cmath>

namespace xrpc::net {

bool RetryingTransport::IsUpdatingEnvelope(const std::string& body) {
  // The SOAP codec emits the XQUF marker as an attribute of xrpc:request;
  // both quote styles are accepted on the wire.
  return body.find("updCall=\"true\"") != std::string::npos ||
         body.find("updCall='true'") != std::string::npos;
}

int64_t RetryingTransport::BackoffMicros(int retry) {
  double base = static_cast<double>(policy_.initial_backoff_us) *
                std::pow(policy_.backoff_multiplier, retry - 1);
  base = std::min(base, static_cast<double>(policy_.max_backoff_us));
  if (policy_.jitter_fraction > 0) {
    double draw;
    {
      std::lock_guard<std::mutex> lock(prng_mu_);
      draw = prng_.NextDouble();
    }
    base *= 1.0 + policy_.jitter_fraction * (2.0 * draw - 1.0);
  }
  return std::max<int64_t>(0, static_cast<int64_t>(base));
}

StatusOr<PostResult> RetryingTransport::Post(const std::string& dest_uri,
                                             const std::string& body) {
  const bool updating = IsUpdatingEnvelope(body);
  const int max_attempts = std::max(1, policy_.max_attempts);
  // Backoff waits are part of the exchange's wire-level elapsed time; they
  // are accumulated into the returned network_micros so that critical-path
  // accounting (Table 4) sees the true cost of a flaky link.
  int64_t backoff_total = 0;
  Status last_error = Status::NetworkError("no attempt made");

  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    auto result = inner_->Post(dest_uri, body);

    if (result.ok() && policy_.request_timeout_us > 0 &&
        result->network_micros > policy_.request_timeout_us) {
      // The reply arrived past the deadline: the caller has already given
      // up on this attempt, so the reply is discarded (its content must not
      // be used — that would resurrect an abandoned request).
      if (metrics_) metrics_->RecordTimeout(dest_uri);
      result = Status::NetworkError(
          "request timed out after " +
          std::to_string(result->network_micros) + "us (deadline " +
          std::to_string(policy_.request_timeout_us) + "us)");
    }

    if (result.ok()) {
      result->network_micros += backoff_total;
      if (metrics_) {
        metrics_->RecordClientRequest(dest_uri, body.size(),
                                      result->body.size(),
                                      result->network_micros, /*ok=*/true);
      }
      return result;
    }

    last_error = result.status();
    if (metrics_) {
      metrics_->RecordClientRequest(dest_uri, body.size(), 0, 0,
                                    /*ok=*/false);
    }

    // Only transport-level failures are transient; and an updating envelope
    // is never retransmitted once it may have reached the destination
    // (at-most-once, Section 4.4).
    if (last_error.code() != StatusCode::kNetworkError || updating ||
        attempt == max_attempts) {
      break;
    }

    int64_t backoff = BackoffMicros(attempt);
    backoff_total += backoff;
    if (metrics_) {
      metrics_->RecordRetry(dest_uri);
      metrics_->RecordBackoff(backoff);
    }
    if (sleep_) sleep_(backoff);
  }
  return last_error;
}

}  // namespace xrpc::net
