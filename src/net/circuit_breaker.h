#ifndef XRPC_NET_CIRCUIT_BREAKER_H_
#define XRPC_NET_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "net/rpc_metrics.h"

namespace xrpc::net {

/// Per-peer circuit breaker: after `failure_threshold` CONSECUTIVE
/// failures/timeouts toward one destination the circuit opens and requests
/// are short-circuited (failed without a dial) until `cooldown_us` has
/// passed on the injected clock; then exactly one probe request is let
/// through (half-open). A successful probe closes the circuit; a failed
/// probe re-opens it for another cooldown.
///
/// This is the fan-out degradation layer under ExecuteBulkAll: a dead
/// destination costs one instant local failure instead of a full dial +
/// timeout on every bulk exchange, while error isolation still reports the
/// skipped destination per-destination.
///
/// Time is injected (`now_us`), so the simulated network's virtual clock
/// and the steady clock age breakers identically. Thread-safe.
class CircuitBreaker {
 public:
  using NowFn = std::function<int64_t()>;

  struct Policy {
    int failure_threshold = 3;       ///< consecutive failures before opening
    int64_t cooldown_us = 1'000'000; ///< open duration before a probe
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker(Policy policy, NowFn now_us)
      : policy_(policy), now_us_(std::move(now_us)) {}
  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// True when a request toward `peer` may be attempted. An open circuit
  /// whose cooldown has passed transitions to half-open and admits this
  /// one caller as the probe; further callers are refused until the probe
  /// reports back.
  bool Allow(const std::string& peer);

  /// Outcome of an attempted request (dial failures, transport errors and
  /// timeouts all count as failures; application-level faults mean the
  /// peer is alive and count as successes for breaker purposes).
  void RecordSuccess(const std::string& peer);
  void RecordFailure(const std::string& peer);

  /// Releases the half-open probe slot WITHOUT an outcome. Every caller
  /// that Allow() admitted must eventually call exactly one of
  /// RecordSuccess / RecordFailure / OnProbeAbandoned: an admitted probe
  /// that returns none of them (e.g. the deadline budget ran out between
  /// Allow() and the dial) would otherwise leave `probe_in_flight` set
  /// forever, permanently short-circuiting the peer even after it
  /// recovers. The circuit returns to open but keeps its original
  /// opened_at, so the elapsed cooldown still counts and the next caller
  /// becomes the probe immediately.
  void OnProbeAbandoned(const std::string& peer);

  State GetState(const std::string& peer) const;

  /// Transition/short-circuit counters land in the shared registry.
  void set_metrics(RpcMetrics* metrics) { metrics_ = metrics; }

  const Policy& policy() const { return policy_; }

  void Reset();

 private:
  struct PeerState {
    State state = State::kClosed;
    int consecutive_failures = 0;
    int64_t opened_at_us = 0;
    bool probe_in_flight = false;
  };

  Policy policy_;
  NowFn now_us_;
  RpcMetrics* metrics_ = nullptr;
  mutable std::mutex mu_;
  std::map<std::string, PeerState> peers_;
};

}  // namespace xrpc::net

#endif  // XRPC_NET_CIRCUIT_BREAKER_H_
