#include "net/simulated_network.h"

#include "base/clock.h"

namespace xrpc::net {

void SimulatedNetwork::RegisterPeer(const XrpcUri& address,
                                    SoapEndpoint* endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  peers_[address.PeerKey()] = endpoint;
}

void SimulatedNetwork::DisconnectPeer(const XrpcUri& address) {
  std::lock_guard<std::mutex> lock(mu_);
  peers_.erase(address.PeerKey());
}

void SimulatedNetwork::FailNextPost(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  injected_failure_ = std::move(status);
  has_injected_failure_ = true;
}

void SimulatedNetwork::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  messages_ = 0;
  bytes_sent_ = 0;
  bytes_received_ = 0;
  clock_.Reset();
}

StatusOr<PostResult> SimulatedNetwork::Post(const std::string& dest_uri,
                                            const std::string& body) {
  XRPC_ASSIGN_OR_RETURN(XrpcUri uri, ParseXrpcUri(dest_uri));
  SoapEndpoint* endpoint = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (has_injected_failure_) {
      has_injected_failure_ = false;
      return injected_failure_;
    }
    auto it = peers_.find(uri.PeerKey());
    if (it == peers_.end()) {
      return Status::NetworkError("connection refused: " + uri.PeerKey());
    }
    endpoint = it->second;
  }

  int64_t request_cost = profile_.MessageCost(body.size());
  StopWatch handler_watch;
  XRPC_ASSIGN_OR_RETURN(std::string reply, endpoint->Handle(uri.path, body));
  int64_t server_micros = handler_watch.ElapsedMicros();
  int64_t response_cost = profile_.MessageCost(reply.size());

  PostResult result;
  result.network_micros = request_cost + response_cost;
  result.server_micros = server_micros;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++messages_;
    bytes_sent_ += static_cast<int64_t>(body.size());
    bytes_received_ += static_cast<int64_t>(reply.size());
    clock_.Advance(result.network_micros);
  }
  result.body = std::move(reply);
  return result;
}

}  // namespace xrpc::net
