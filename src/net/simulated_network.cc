#include "net/simulated_network.h"

#include <algorithm>

#include "base/clock.h"

namespace xrpc::net {

void SimulatedNetwork::RegisterPeer(const XrpcUri& address,
                                    SoapEndpoint* endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  peers_[address.PeerKey()] = endpoint;
}

void SimulatedNetwork::DisconnectPeer(const XrpcUri& address) {
  std::lock_guard<std::mutex> lock(mu_);
  peers_.erase(address.PeerKey());
}

void SimulatedNetwork::FailNextPost(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  injected_failures_.push_back(std::move(status));
}

void SimulatedNetwork::set_fault_profile(FaultProfile profile) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_profile_ = profile;
  fault_prng_.Reseed(profile.seed);
  fault_serial_ = 0;
}

void SimulatedNetwork::AdvanceForPostLocked(int64_t cost_us) {
  if (parallel_depth_ > 0) {
    group_max_end_us_ =
        std::max(group_max_end_us_, group_start_us_ + cost_us);
  } else {
    clock_.Advance(cost_us);
  }
}

void SimulatedNetwork::BeginParallelGroup() {
  std::lock_guard<std::mutex> lock(mu_);
  if (parallel_depth_++ == 0) {
    group_start_us_ = clock_.NowMicros();
    group_max_end_us_ = group_start_us_;
  }
}

void SimulatedNetwork::EndParallelGroup() {
  std::lock_guard<std::mutex> lock(mu_);
  if (parallel_depth_ > 0 && --parallel_depth_ == 0) {
    // Backoff sleeps may have advanced the clock past the group's critical
    // path already; never move it backwards.
    int64_t now = clock_.NowMicros();
    if (group_max_end_us_ > now) clock_.Advance(group_max_end_us_ - now);
  }
}

int64_t SimulatedNetwork::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_injected_;
}

void SimulatedNetwork::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  messages_ = 0;
  bytes_sent_ = 0;
  bytes_received_ = 0;
  clock_.Reset();
}

StatusOr<PostResult> SimulatedNetwork::Post(const std::string& dest_uri,
                                            const std::string& body) {
  XRPC_ASSIGN_OR_RETURN(XrpcUri uri, ParseXrpcUri(dest_uri));
  if (post_hook_) {
    // The hook runs before mu_ so it may mutate membership (Disconnect /
    // RegisterPeer) and have the change observed by this very Post.
    post_hook_(post_serial_.fetch_add(1, std::memory_order_relaxed) + 1);
  } else {
    post_serial_.fetch_add(1, std::memory_order_relaxed);
  }
  SoapEndpoint* endpoint = nullptr;
  bool truncate_response = false;
  int64_t spike_us = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++fault_serial_;
    auto inject = [this](Status status) {
      ++faults_injected_;
      if (metrics_) metrics_->RecordInjectedFault();
      return status;
    };
    if (!injected_failures_.empty()) {
      Status status = std::move(injected_failures_.front());
      injected_failures_.pop_front();
      return inject(std::move(status));
    }
    const FaultProfile& f = fault_profile_;
    if (f.fail_every_nth > 0 && fault_serial_ % f.fail_every_nth == 0) {
      return inject(Status::NetworkError(
          "injected failure (every " + std::to_string(f.fail_every_nth) +
          "th request)"));
    }
    if (f.drop_probability > 0 &&
        fault_prng_.NextDouble() < f.drop_probability) {
      return inject(Status::NetworkError("injected drop: request lost"));
    }
    truncate_response =
        f.truncate_every_nth > 0 && fault_serial_ % f.truncate_every_nth == 0;
    if (f.latency_spike_every_nth > 0 &&
        fault_serial_ % f.latency_spike_every_nth == 0) {
      spike_us = f.latency_spike_us;
    }
    auto it = peers_.find(uri.PeerKey());
    if (it == peers_.end()) {
      return Status::NetworkError("connection refused: " + uri.PeerKey());
    }
    endpoint = it->second;
  }

  int64_t request_cost = profile_.MessageCost(body.size()) + spike_us;
  StopWatch handler_watch;
  XRPC_ASSIGN_OR_RETURN(std::string reply, endpoint->Handle(uri.path, body));
  int64_t server_micros = handler_watch.ElapsedMicros();

  if (truncate_response) {
    // The request was delivered and handled — any server-side effects have
    // happened — but the response never makes it back. The wire still
    // carried the request.
    std::lock_guard<std::mutex> lock(mu_);
    ++messages_;
    bytes_sent_ += static_cast<int64_t>(body.size());
    AdvanceForPostLocked(request_cost);
    ++faults_injected_;
    if (metrics_) metrics_->RecordInjectedFault();
    return Status::NetworkError("truncated response: reply lost");
  }

  int64_t response_cost = profile_.MessageCost(reply.size());

  PostResult result;
  result.network_micros = request_cost + response_cost;
  result.server_micros = server_micros;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++messages_;
    bytes_sent_ += static_cast<int64_t>(body.size());
    bytes_received_ += static_cast<int64_t>(reply.size());
    AdvanceForPostLocked(result.network_micros);
  }
  result.body = std::move(reply);
  return result;
}

}  // namespace xrpc::net
