#include "net/uri.h"

#include "base/string_util.h"

namespace xrpc::net {

namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool IsUnreserved(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_' ||
         c == '~';
}

/// pchar extras beyond unreserved: sub-delims plus ":" and "@"; '/' is the
/// path separator and also passes through.
bool IsPathSafe(char c) {
  if (IsUnreserved(c) || c == '/') return true;
  switch (c) {
    case ':':
    case '@':
    case '!':
    case '$':
    case '&':
    case '\'':
    case '(':
    case ')':
    case '*':
    case '+':
    case ',':
    case ';':
    case '=':
      return true;
    default:
      return false;
  }
}

}  // namespace

StatusOr<std::string> PercentDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    if (i + 2 >= s.size()) {
      return Status::InvalidArgument("truncated percent escape in '" +
                                     std::string(s) + "'");
    }
    int hi = HexValue(s[i + 1]);
    int lo = HexValue(s[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("malformed percent escape '" +
                                     std::string(s.substr(i, 3)) + "' in '" +
                                     std::string(s) + "'");
    }
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return out;
}

std::string PercentEncodePath(std::string_view path) {
  static const char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(path.size());
  for (char c : path) {
    if (IsPathSafe(c)) {
      out += c;
    } else {
      unsigned char u = static_cast<unsigned char>(c);
      out += '%';
      out += kHex[u >> 4];
      out += kHex[u & 0xf];
    }
  }
  return out;
}

std::string XrpcUri::ToString() const {
  std::string out = "xrpc://" + host;
  if (port != kDefaultXrpcPort) out += ":" + std::to_string(port);
  if (!path.empty()) out += "/" + PercentEncodePath(path);
  return out;
}

StatusOr<XrpcUri> ParseXrpcUri(std::string_view uri) {
  std::string_view rest = uri;
  if (StartsWith(rest, "xrpc://")) {
    rest = rest.substr(7);
  } else if (rest.find("://") != std::string_view::npos) {
    return Status::InvalidArgument("not an xrpc:// URI: " + std::string(uri));
  }
  if (rest.empty()) {
    return Status::InvalidArgument("empty XRPC destination");
  }
  XrpcUri out;
  size_t slash = rest.find('/');
  std::string_view authority =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  if (slash != std::string_view::npos) {
    XRPC_ASSIGN_OR_RETURN(out.path, PercentDecode(rest.substr(slash + 1)));
  }
  size_t colon = authority.find(':');
  std::string_view host_part = authority;
  if (colon != std::string_view::npos) {
    host_part = authority.substr(0, colon);
    XRPC_ASSIGN_OR_RETURN(int64_t port,
                          ParseInt64(authority.substr(colon + 1)));
    if (port <= 0 || port > 65535) {
      return Status::InvalidArgument("invalid port in " + std::string(uri));
    }
    out.port = static_cast<int>(port);
  }
  XRPC_ASSIGN_OR_RETURN(out.host, PercentDecode(host_part));
  if (out.host.empty()) {
    return Status::InvalidArgument("empty host in " + std::string(uri));
  }
  return out;
}

}  // namespace xrpc::net
