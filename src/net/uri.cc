#include "net/uri.h"

#include "base/string_util.h"

namespace xrpc::net {

std::string XrpcUri::ToString() const {
  std::string out = "xrpc://" + host;
  if (port != kDefaultXrpcPort) out += ":" + std::to_string(port);
  if (!path.empty()) out += "/" + path;
  return out;
}

StatusOr<XrpcUri> ParseXrpcUri(std::string_view uri) {
  std::string_view rest = uri;
  if (StartsWith(rest, "xrpc://")) {
    rest = rest.substr(7);
  } else if (rest.find("://") != std::string_view::npos) {
    return Status::InvalidArgument("not an xrpc:// URI: " + std::string(uri));
  }
  if (rest.empty()) {
    return Status::InvalidArgument("empty XRPC destination");
  }
  XrpcUri out;
  size_t slash = rest.find('/');
  std::string_view authority =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  if (slash != std::string_view::npos) {
    out.path = std::string(rest.substr(slash + 1));
  }
  size_t colon = authority.find(':');
  if (colon == std::string_view::npos) {
    out.host = std::string(authority);
  } else {
    out.host = std::string(authority.substr(0, colon));
    XRPC_ASSIGN_OR_RETURN(int64_t port,
                          ParseInt64(authority.substr(colon + 1)));
    if (port <= 0 || port > 65535) {
      return Status::InvalidArgument("invalid port in " + std::string(uri));
    }
    out.port = static_cast<int>(port);
  }
  if (out.host.empty()) {
    return Status::InvalidArgument("empty host in " + std::string(uri));
  }
  return out;
}

}  // namespace xrpc::net
