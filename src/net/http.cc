#include "net/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "base/clock.h"
#include "base/string_util.h"
#include "net/retrying_transport.h"
#include "net/uri.h"

namespace xrpc::net {

namespace {

constexpr char kClosedBeforeMessage[] = "connection closed before message";

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

// Parses start line + header lines out of buf[0, header_end). Strict:
// every header line needs a nonempty name before the colon, and
// Content-Length must be unique and a valid nonnegative integer.
Status ParseHeaderBlock(std::string_view block, HttpMessage* msg,
                        size_t* content_length) {
  bool first = true;
  bool saw_content_length = false;
  size_t pos = 0;
  while (pos < block.size()) {
    size_t eol = block.find("\r\n", pos);
    size_t end = eol == std::string_view::npos ? block.size() : eol;
    std::string_view line = block.substr(pos, end - pos);
    pos = eol == std::string_view::npos ? block.size() : eol + 2;
    if (first) {
      msg->start_line = std::string(line);
      first = false;
      continue;
    }
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("malformed header line: " +
                                     std::string(line));
    }
    // No trimming of the name: "Content-Length " (trailing space) or a
    // folded name is not the Content-Length header.
    std::string name = ToLower(line.substr(0, colon));
    std::string value(TrimWhitespace(line.substr(colon + 1)));
    if (name == "content-length") {
      if (saw_content_length) {
        return Status::InvalidArgument(
            "duplicate Content-Length header: body boundary is ambiguous");
      }
      saw_content_length = true;
      auto len = ParseInt64(value);
      if (!len.ok() || len.value() < 0) {
        return Status::InvalidArgument("bad Content-Length");
      }
      *content_length = static_cast<size_t>(len.value());
    }
    if (name == "transfer-encoding" && ToLower(value) != "identity") {
      // This server frames bodies by Content-Length only. Acting on the
      // length header while ignoring Transfer-Encoding: chunked would
      // desynchronize framing (a smuggling vector), so the message is
      // refused before any body byte is consumed; the server maps this to
      // 501 Not Implemented.
      return Status::Unsupported("Transfer-Encoding '" + value +
                                 "' not implemented; frame the body with "
                                 "Content-Length");
    }
    msg->headers.emplace_back(std::move(name), std::move(value));
  }
  return Status::OK();
}

Status SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return Status::NetworkError("send timed out");
      }
      return Status::NetworkError("send failed");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Parses the status code out of "HTTP/1.1 <code> <reason>". Returns -1 on a
// malformed status line. Only the start line is considered, so a " 200 "
// inside the response body cannot masquerade as success.
int ParseStatusCode(const std::string& line) {
  if (line.rfind("HTTP/", 0) != 0) return -1;
  size_t sp = line.find(' ');
  if (sp == std::string::npos) return -1;
  size_t code_end = line.find(' ', sp + 1);
  auto code = ParseInt64(std::string_view(line).substr(
      sp + 1,
      code_end == std::string::npos ? std::string::npos : code_end - sp - 1));
  if (!code.ok() || code.value() < 100 || code.value() > 599) return -1;
  return static_cast<int>(code.value());
}

void SetSocketTimeout(int fd, int64_t timeout_millis) {
  if (timeout_millis <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_millis / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_millis % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void SetRecvTimeout(int fd, int64_t timeout_millis) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_millis / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_millis % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

// Graceful sender-side teardown: signal EOF, then wait (bounded by
// `drain_timeout_millis`) for the peer's own EOF before closing. Closing
// with unread bytes in the receive buffer makes the kernel send RST, which
// can destroy the response we just wrote before the peer reads it — the
// classic lost-last-reply bug.
void GracefulClose(int fd, int64_t drain_timeout_millis) {
  ::shutdown(fd, SHUT_WR);
  SetRecvTimeout(fd, drain_timeout_millis);
  char buf[1024];
  while (::recv(fd, buf, sizeof(buf), 0) > 0) {
  }
  ::close(fd);
}

StatusOr<int> DialHost(const std::string& host, int port,
                       int64_t timeout_millis) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::NetworkError("socket() failed");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetSocketTimeout(fd, timeout_millis);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  std::string ip = (host == "localhost" || host.empty()) ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::NetworkError("unresolvable host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::NetworkError("connect failed: " + host + ":" +
                                std::to_string(port));
  }
  return fd;
}

std::string BuildRequest(const std::string& host, const std::string& path,
                         const std::string& body, bool keep_alive) {
  return "POST /" + PercentEncodePath(path) + " HTTP/1.1\r\nHost: " + host +
         "\r\nContent-Type: application/soap+xml"
         "\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\nConnection: " +
         (keep_alive ? "keep-alive" : "close") + "\r\n\r\n" + body;
}

std::string BuildResponse(const std::string& status_line,
                          const std::string& body, bool keep_alive) {
  return status_line +
         "\r\nContent-Type: application/soap+xml"
         "\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\nConnection: " +
         (keep_alive ? "keep-alive" : "close") + "\r\n\r\n" + body;
}

// Maps a parsed HTTP response to the caller-visible outcome: 2xx body,
// SOAP Fault recognition in 500 bodies, NetworkError otherwise.
StatusOr<std::string> InterpretResponse(const HttpMessage& message) {
  int code = ParseStatusCode(message.start_line);
  if (code < 0) {
    return Status::NetworkError("malformed HTTP status line: " +
                                message.start_line);
  }
  if (code >= 200 && code < 300) return message.body;
  if (code == 500) {
    // The embedded server reports handler errors as Status::ToString() in
    // the 500 body; a SOAP Fault among them is an application-level
    // outcome, not a transport failure, and must not look retryable.
    const std::string& err_body = message.body;
    constexpr std::string_view kFaultPrefix = "SoapFault: ";
    if (err_body.rfind(kFaultPrefix, 0) == 0) {
      return Status::SoapFault(err_body.substr(kFaultPrefix.size()));
    }
    size_t fs = err_body.find("<faultstring>");
    if (fs != std::string::npos) {
      size_t start = fs + 13;
      size_t end = err_body.find("</faultstring>", start);
      if (end != std::string::npos) {
        return Status::SoapFault(err_body.substr(start, end - start));
      }
    }
  }
  return Status::NetworkError("HTTP error: " + message.start_line);
}

bool IsClosedBeforeMessage(const Status& status) {
  return status.code() == StatusCode::kNetworkError &&
         status.message() == kClosedBeforeMessage;
}

}  // namespace

std::string HttpMessage::Header(const std::string& name) const {
  for (const auto& [n, v] : headers) {
    if (n == name) return v;
  }
  return "";
}

bool HttpMessage::WantsClose() const {
  return ToLower(Header("connection")).find("close") != std::string::npos;
}

StatusOr<HttpMessage> ReadHttpMessage(int fd, std::string* carry) {
  std::string buf = std::move(*carry);
  carry->clear();
  size_t header_end = std::string::npos;
  size_t content_length = 0;
  HttpMessage msg;
  char chunk[4096];
  while (true) {
    if (header_end == std::string::npos) {
      header_end = buf.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        XRPC_RETURN_IF_ERROR(ParseHeaderBlock(
            std::string_view(buf).substr(0, header_end), &msg,
            &content_length));
      }
    }
    if (header_end != std::string::npos &&
        buf.size() >= header_end + 4 + content_length) {
      break;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::NetworkError("recv timed out");
      }
      return Status::NetworkError("recv failed");
    }
    if (n == 0) {
      if (buf.empty()) return Status::NetworkError(kClosedBeforeMessage);
      if (header_end != std::string::npos) {
        return Status::NetworkError(
            "truncated body: got " +
            std::to_string(buf.size() - header_end - 4) + " of " +
            std::to_string(content_length) + " bytes");
      }
      return Status::NetworkError("truncated HTTP message");
    }
    buf.append(chunk, static_cast<size_t>(n));
  }
  msg.body = buf.substr(header_end + 4, content_length);
  *carry = buf.substr(header_end + 4 + content_length);
  return msg;
}

HttpServer::~HttpServer() { Stop(); }

StatusOr<int> HttpServer::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::NetworkError("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    return Status::NetworkError("bind() failed on port " +
                                std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    return Status::NetworkError("listen() failed");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = false;
  }
  running_ = true;
  int workers = options_.workers > 0 ? options_.workers : 1;
  worker_threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    worker_threads_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Queued connections never reached a worker: just close them. Active
    // ones are shut down (not closed — the owning worker closes, avoiding
    // an fd-reuse race) which wakes any recv() block immediately.
    for (int fd : queue_) ::close(fd);
    queue_.clear();
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  queue_cv_.notify_all();
  for (std::thread& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  worker_threads_.clear();
}

void HttpServer::RejectOverload(int fd) {
  overload_rejections_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_) metrics_->RecordServerOverload();
  const std::string body = "server overloaded: accept queue full";
  (void)SendAll(fd,
                BuildResponse("HTTP/1.1 503 Service Unavailable", body,
                              /*keep_alive=*/false));
  GracefulClose(fd, options_.drain_timeout_millis);
}

void HttpServer::AcceptLoop() {
  while (running_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_) return;
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    bool rejected = false;
    size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (static_cast<int>(queue_.size()) >= options_.accept_queue_capacity) {
        rejected = true;
      } else {
        queue_.push_back(fd);
        depth = queue_.size();
      }
    }
    if (rejected) {
      RejectOverload(fd);
      continue;
    }
    if (metrics_) metrics_->RecordAcceptQueueDepth(static_cast<int64_t>(depth));
    queue_cv_.notify_one();
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue drained by Stop()
      fd = queue_.front();
      queue_.pop_front();
      active_fds_.insert(fd);
    }
    bool graceful = ServeConnection(fd);
    if (graceful) {
      ::shutdown(fd, SHUT_WR);
      SetRecvTimeout(fd, options_.drain_timeout_millis);
      char buf[1024];
      while (::recv(fd, buf, sizeof(buf), 0) > 0) {
      }
    }
    {
      // close under mu_, after deregistering: Stop() only shuts down fds it
      // still finds in active_fds_, so it can never touch a number the
      // kernel has already reassigned.
      std::lock_guard<std::mutex> lock(mu_);
      active_fds_.erase(fd);
      ::close(fd);
    }
  }
}

bool HttpServer::ServeConnection(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  std::string carry;
  bool responded = false;
  int served = 0;
  while (running_) {
    SetRecvTimeout(fd, options_.keep_alive_idle_millis);
    auto message = ReadHttpMessage(fd, &carry);
    if (!message.ok()) {
      const Status& st = message.status();
      // A client that went away between requests (clean close or idle
      // expiry) is normal keep-alive lifecycle: disconnect silently. A
      // half-delivered or malformed request is answered 400.
      if (IsClosedBeforeMessage(st) ||
          st.message().find("timed out") != std::string::npos ||
          st.message() == "recv failed") {
        break;
      }
      // A request the parser understood but refuses to serve (chunked
      // Transfer-Encoding) is answered 501; malformed requests get 400.
      const char* reject_line = st.code() == StatusCode::kUnsupported
                                    ? "HTTP/1.1 501 Not Implemented"
                                    : "HTTP/1.1 400 Bad Request";
      (void)SendAll(fd, BuildResponse(reject_line, st.ToString(),
                                      /*keep_alive=*/false));
      responded = true;
      break;
    }
    ++served;
    requests_served_.fetch_add(1, std::memory_order_relaxed);

    std::string reply_body;
    std::string status_line = "HTTP/1.1 200 OK";
    bool keep = running_ && !message->WantsClose() &&
                !(options_.max_requests_per_connection > 0 &&
                  served >= options_.max_requests_per_connection);
    // Request line: METHOD SP path SP version. A request line without both
    // separators is malformed — answer 400 instead of indexing garbage.
    const std::string& line = message->start_line;
    size_t sp1 = line.find(' ');
    size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      status_line = "HTTP/1.1 400 Bad Request";
      keep = false;
    } else {
      std::string method = line.substr(0, sp1);
      std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      if (method != "POST") {
        status_line = "HTTP/1.1 405 Method Not Allowed";
      } else {
        if (!path.empty() && path[0] == '/') path = path.substr(1);
        // The wire carries the percent-encoded form; handlers see the
        // decoded path. Malformed escapes are a client error.
        auto decoded = PercentDecode(path);
        if (!decoded.ok()) {
          status_line = "HTTP/1.1 400 Bad Request";
          reply_body = decoded.status().ToString();
        } else {
          auto handled = endpoint_->Handle(decoded.value(), message->body);
          if (handled.ok()) {
            reply_body = std::move(handled).value();
          } else {
            status_line = "HTTP/1.1 500 Internal Server Error";
            reply_body = handled.status().ToString();
          }
        }
      }
    }
    if (!SendAll(fd, BuildResponse(status_line, reply_body, keep)).ok()) {
      break;
    }
    responded = true;
    if (!keep) break;
  }
  return responded;
}

StatusOr<std::string> HttpTransport::Exchange(const XrpcUri& uri,
                                              const std::string& body) {
  const std::string peer_key = uri.PeerKey();
  const bool keep_alive = keep_alive_.load(std::memory_order_relaxed);
  // At most one extra attempt, and only for failures that prove the pooled
  // connection was stale (see class comment) — never after a fresh dial.
  for (int attempt = 0; attempt < 2; ++attempt) {
    int fd = keep_alive ? pool_.Acquire(peer_key) : -1;
    const bool reused = fd >= 0;
    if (!reused) {
      XRPC_ASSIGN_OR_RETURN(fd, DialHost(uri.host, uri.port, timeout_millis_));
    } else {
      SetSocketTimeout(fd, timeout_millis_);
    }

    Status sent = SendAll(fd, BuildRequest(uri.host, uri.path, body,
                                           keep_alive));
    if (!sent.ok()) {
      ::close(fd);
      if (reused) {
        // The request did not fully reach the peer, so it cannot have been
        // executed — re-dialing is safe even for an updating call.
        if (metrics_) metrics_->RecordStaleConnectionRetry();
        continue;
      }
      return sent;
    }

    std::string carry;
    auto message = ReadHttpMessage(fd, &carry);
    if (!message.ok()) {
      ::close(fd);
      if (reused && IsClosedBeforeMessage(message.status()) &&
          !RetryingTransport::IsUpdatingEnvelope(body)) {
        // Zero response bytes: the peer closed the pooled connection while
        // it sat idle. Replaying a read-only request is harmless; an
        // updating one might have been consumed right before the close, so
        // it falls through to the caller (at-most-once).
        if (metrics_) metrics_->RecordStaleConnectionRetry();
        continue;
      }
      return message.status();
    }

    // Pool the socket again only when the exchange left it in a known-clean
    // state: keep-alive granted by the peer and no stray bytes beyond the
    // response (anything in `carry` means framing is off — don't reuse).
    if (keep_alive && carry.empty() && !message->WantsClose()) {
      pool_.Release(peer_key, fd);
    } else {
      ::close(fd);
    }
    return InterpretResponse(*message);
  }
  return Status::NetworkError("stale pooled connection to " + peer_key +
                              ": re-dial failed");
}

StatusOr<PostResult> HttpTransport::Post(const std::string& dest_uri,
                                         const std::string& body) {
  XRPC_ASSIGN_OR_RETURN(XrpcUri uri, ParseXrpcUri(dest_uri));
  StopWatch watch;
  XRPC_ASSIGN_OR_RETURN(std::string reply, Exchange(uri, body));
  PostResult result;
  result.network_micros = watch.ElapsedMicros();
  result.body = std::move(reply);
  return result;
}

StatusOr<std::string> HttpPost(const std::string& host, int port,
                               const std::string& path,
                               const std::string& body,
                               int64_t timeout_millis) {
  XRPC_ASSIGN_OR_RETURN(int fd, DialHost(host, port, timeout_millis));
  Status st = SendAll(fd, BuildRequest(host, path, body,
                                       /*keep_alive=*/false));
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  std::string carry;
  auto message = ReadHttpMessage(fd, &carry);
  ::close(fd);
  XRPC_RETURN_IF_ERROR(message.status());
  return InterpretResponse(*message);
}

}  // namespace xrpc::net
