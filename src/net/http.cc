#include "net/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "base/string_util.h"
#include "net/uri.h"

namespace xrpc::net {

namespace {

// Reads from fd until the full HTTP message (headers + Content-Length body)
// has arrived. Returns headers+body as one string. A connection that closes
// before delivering Content-Length bytes is a truncated body, not a valid
// message — accepting it would hand half a SOAP envelope to the caller.
StatusOr<std::string> ReadHttpMessage(int fd) {
  std::string buf;
  char chunk[4096];
  size_t header_end = std::string::npos;
  size_t content_length = 0;
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::NetworkError("recv timed out");
      }
      return Status::NetworkError("recv failed");
    }
    if (n == 0) {
      if (header_end != std::string::npos &&
          buf.size() < header_end + 4 + content_length) {
        return Status::NetworkError(
            "truncated body: got " +
            std::to_string(buf.size() - header_end - 4) + " of " +
            std::to_string(content_length) + " bytes");
      }
      break;
    }
    buf.append(chunk, static_cast<size_t>(n));
    if (header_end == std::string::npos) {
      header_end = buf.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        // Parse Content-Length.
        std::string headers = buf.substr(0, header_end);
        for (char& c : headers) c = static_cast<char>(std::tolower(c));
        size_t cl = headers.find("content-length:");
        if (cl != std::string::npos) {
          size_t start = cl + 15;
          size_t end = headers.find("\r\n", start);
          auto len = ParseInt64(std::string_view(headers).substr(
              start, end == std::string::npos ? std::string::npos
                                              : end - start));
          if (!len.ok()) return Status::NetworkError("bad Content-Length");
          content_length = static_cast<size_t>(len.value());
        }
      }
    }
    if (header_end != std::string::npos &&
        buf.size() >= header_end + 4 + content_length) {
      break;
    }
  }
  if (header_end == std::string::npos) {
    return Status::NetworkError("truncated HTTP message");
  }
  return buf;
}

Status SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return Status::NetworkError("send timed out");
      }
      return Status::NetworkError("send failed");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

std::string ExtractBody(const std::string& message) {
  size_t pos = message.find("\r\n\r\n");
  return pos == std::string::npos ? "" : message.substr(pos + 4);
}

// Parses the status code out of "HTTP/1.1 <code> <reason>". Returns -1 on a
// malformed status line. Only the first line is considered, so a " 200 "
// inside the response body cannot masquerade as success.
int ParseStatusCode(const std::string& message) {
  size_t line_end = message.find("\r\n");
  std::string line = message.substr(
      0, line_end == std::string::npos ? message.size() : line_end);
  if (line.rfind("HTTP/", 0) != 0) return -1;
  size_t sp = line.find(' ');
  if (sp == std::string::npos) return -1;
  size_t code_end = line.find(' ', sp + 1);
  auto code = ParseInt64(std::string_view(line).substr(
      sp + 1,
      code_end == std::string::npos ? std::string::npos : code_end - sp - 1));
  if (!code.ok() || code.value() < 100 || code.value() > 599) return -1;
  return static_cast<int>(code.value());
}

void SetSocketTimeout(int fd, int64_t timeout_millis) {
  if (timeout_millis <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_millis / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_millis % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

StatusOr<int> HttpServer::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::NetworkError("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    return Status::NetworkError("bind() failed on port " +
                                std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    return Status::NetworkError("listen() failed");
  }
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  for (Worker& w : workers_) {
    if (w.thread.joinable()) w.thread.join();
  }
  workers_.clear();
}

void HttpServer::ReapFinishedLocked() {
  size_t kept = 0;
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i].done->load(std::memory_order_acquire)) {
      if (workers_[i].thread.joinable()) workers_[i].thread.join();
    } else {
      // Self-move-assigning a joinable std::thread terminates; only shift
      // when a reaped slot opened up below.
      if (kept != i) workers_[kept] = std::move(workers_[i]);
      ++kept;
    }
  }
  workers_.resize(kept);
}

void HttpServer::AcceptLoop() {
  while (running_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_) return;
      continue;
    }
    Worker w;
    w.done = std::make_shared<std::atomic<bool>>(false);
    auto done = w.done;
    w.thread = std::thread([this, fd, done] {
      ServeConnection(fd);
      done->store(true, std::memory_order_release);
    });
    std::lock_guard<std::mutex> lock(mu_);
    ReapFinishedLocked();
    workers_.push_back(std::move(w));
  }
}

void HttpServer::ServeConnection(int fd) {
  auto message = ReadHttpMessage(fd);
  std::string reply_body;
  std::string status_line = "HTTP/1.1 200 OK";
  if (!message.ok()) {
    status_line = "HTTP/1.1 400 Bad Request";
  } else {
    // First line: METHOD SP path SP version. A request line without both
    // separators is malformed — answer 400 instead of indexing garbage.
    const std::string& m = message.value();
    size_t line_end = m.find("\r\n");
    std::string line =
        m.substr(0, line_end == std::string::npos ? m.size() : line_end);
    size_t sp1 = line.find(' ');
    size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                          : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      status_line = "HTTP/1.1 400 Bad Request";
    } else {
      std::string method = line.substr(0, sp1);
      std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      if (method != "POST") {
        status_line = "HTTP/1.1 405 Method Not Allowed";
      } else {
        if (!path.empty() && path[0] == '/') path = path.substr(1);
        auto handled = endpoint_->Handle(path, ExtractBody(m));
        if (handled.ok()) {
          reply_body = std::move(handled).value();
        } else {
          status_line = "HTTP/1.1 500 Internal Server Error";
          reply_body = handled.status().ToString();
        }
      }
    }
  }
  std::string response = status_line +
                         "\r\nContent-Type: application/soap+xml"
                         "\r\nContent-Length: " +
                         std::to_string(reply_body.size()) +
                         "\r\nConnection: close\r\n\r\n" + reply_body;
  (void)SendAll(fd, response);
  ::close(fd);
}

StatusOr<std::string> HttpPost(const std::string& host, int port,
                               const std::string& path,
                               const std::string& body,
                               int64_t timeout_millis) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::NetworkError("socket() failed");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetSocketTimeout(fd, timeout_millis);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  std::string ip = (host == "localhost" || host.empty()) ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::NetworkError("unresolvable host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::NetworkError("connect failed: " + host + ":" +
                                std::to_string(port));
  }
  std::string request = "POST /" + path +
                        " HTTP/1.1\r\nHost: " + host +
                        "\r\nContent-Type: application/soap+xml"
                        "\r\nContent-Length: " +
                        std::to_string(body.size()) +
                        "\r\nConnection: close\r\n\r\n" + body;
  Status st = SendAll(fd, request);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  auto message = ReadHttpMessage(fd);
  ::close(fd);
  XRPC_RETURN_IF_ERROR(message.status());
  const std::string& m = message.value();
  int code = ParseStatusCode(m);
  if (code < 0) {
    return Status::NetworkError("malformed HTTP status line: " +
                                m.substr(0, m.find("\r\n")));
  }
  if (code >= 200 && code < 300) return ExtractBody(m);
  if (code == 500) {
    // The embedded server reports handler errors as Status::ToString() in
    // the 500 body; a SOAP Fault among them is an application-level
    // outcome, not a transport failure, and must not look retryable.
    std::string err_body = ExtractBody(m);
    constexpr std::string_view kFaultPrefix = "SoapFault: ";
    if (err_body.rfind(kFaultPrefix, 0) == 0) {
      return Status::SoapFault(err_body.substr(kFaultPrefix.size()));
    }
    size_t fs = err_body.find("<faultstring>");
    if (fs != std::string::npos) {
      size_t start = fs + 13;
      size_t end = err_body.find("</faultstring>", start);
      if (end != std::string::npos) {
        return Status::SoapFault(err_body.substr(start, end - start));
      }
    }
  }
  return Status::NetworkError("HTTP error: " + m.substr(0, m.find("\r\n")));
}

StatusOr<PostResult> HttpTransport::Post(const std::string& dest_uri,
                                         const std::string& body) {
  XRPC_ASSIGN_OR_RETURN(XrpcUri uri, ParseXrpcUri(dest_uri));
  XRPC_ASSIGN_OR_RETURN(
      std::string reply,
      HttpPost(uri.host, uri.port, uri.path, body, timeout_millis_));
  PostResult result;
  result.body = std::move(reply);
  return result;
}

}  // namespace xrpc::net
