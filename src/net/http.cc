#include "net/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "base/string_util.h"
#include "net/uri.h"

namespace xrpc::net {

namespace {

// Reads from fd until the full HTTP message (headers + Content-Length body)
// has arrived. Returns headers+body as one string.
StatusOr<std::string> ReadHttpMessage(int fd) {
  std::string buf;
  char chunk[4096];
  size_t header_end = std::string::npos;
  size_t content_length = 0;
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) return Status::NetworkError("recv failed");
    if (n == 0) break;
    buf.append(chunk, static_cast<size_t>(n));
    if (header_end == std::string::npos) {
      header_end = buf.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        // Parse Content-Length.
        std::string headers = buf.substr(0, header_end);
        for (char& c : headers) c = static_cast<char>(std::tolower(c));
        size_t cl = headers.find("content-length:");
        if (cl != std::string::npos) {
          size_t start = cl + 15;
          size_t end = headers.find("\r\n", start);
          auto len = ParseInt64(std::string_view(headers).substr(
              start, end == std::string::npos ? std::string::npos
                                              : end - start));
          if (!len.ok()) return Status::NetworkError("bad Content-Length");
          content_length = static_cast<size_t>(len.value());
        }
      }
    }
    if (header_end != std::string::npos &&
        buf.size() >= header_end + 4 + content_length) {
      break;
    }
  }
  if (header_end == std::string::npos) {
    return Status::NetworkError("truncated HTTP message");
  }
  return buf;
}

Status SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return Status::NetworkError("send failed");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

std::string ExtractBody(const std::string& message) {
  size_t pos = message.find("\r\n\r\n");
  return pos == std::string::npos ? "" : message.substr(pos + 4);
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

StatusOr<int> HttpServer::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::NetworkError("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    return Status::NetworkError("bind() failed on port " +
                                std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    return Status::NetworkError("listen() failed");
  }
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void HttpServer::AcceptLoop() {
  while (running_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_) return;
      continue;
    }
    workers_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void HttpServer::ServeConnection(int fd) {
  auto message = ReadHttpMessage(fd);
  std::string reply_body;
  std::string status_line = "HTTP/1.1 200 OK";
  if (!message.ok()) {
    status_line = "HTTP/1.1 400 Bad Request";
  } else {
    // First line: METHOD SP path SP version.
    const std::string& m = message.value();
    size_t sp1 = m.find(' ');
    size_t sp2 = m.find(' ', sp1 + 1);
    std::string method = m.substr(0, sp1);
    std::string path =
        sp2 == std::string::npos ? "/" : m.substr(sp1 + 1, sp2 - sp1 - 1);
    if (method != "POST") {
      status_line = "HTTP/1.1 405 Method Not Allowed";
    } else {
      if (!path.empty() && path[0] == '/') path = path.substr(1);
      auto handled = endpoint_->Handle(path, ExtractBody(m));
      if (handled.ok()) {
        reply_body = std::move(handled).value();
      } else {
        status_line = "HTTP/1.1 500 Internal Server Error";
        reply_body = handled.status().ToString();
      }
    }
  }
  std::string response = status_line +
                         "\r\nContent-Type: application/soap+xml"
                         "\r\nContent-Length: " +
                         std::to_string(reply_body.size()) +
                         "\r\nConnection: close\r\n\r\n" + reply_body;
  (void)SendAll(fd, response);
  ::close(fd);
}

StatusOr<std::string> HttpPost(const std::string& host, int port,
                               const std::string& path,
                               const std::string& body) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::NetworkError("socket() failed");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  std::string ip = (host == "localhost" || host.empty()) ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::NetworkError("unresolvable host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::NetworkError("connect failed: " + host + ":" +
                                std::to_string(port));
  }
  std::string request = "POST /" + path +
                        " HTTP/1.1\r\nHost: " + host +
                        "\r\nContent-Type: application/soap+xml"
                        "\r\nContent-Length: " +
                        std::to_string(body.size()) +
                        "\r\nConnection: close\r\n\r\n" + body;
  Status st = SendAll(fd, request);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  auto message = ReadHttpMessage(fd);
  ::close(fd);
  XRPC_RETURN_IF_ERROR(message.status());
  const std::string& m = message.value();
  if (m.find(" 200 ") == std::string::npos &&
      m.rfind("HTTP/1.1 200", 0) != 0) {
    return Status::NetworkError("HTTP error: " + m.substr(0, m.find("\r\n")));
  }
  return ExtractBody(m);
}

StatusOr<PostResult> HttpTransport::Post(const std::string& dest_uri,
                                         const std::string& body) {
  XRPC_ASSIGN_OR_RETURN(XrpcUri uri, ParseXrpcUri(dest_uri));
  XRPC_ASSIGN_OR_RETURN(std::string reply,
                        HttpPost(uri.host, uri.port, uri.path, body));
  PostResult result;
  result.body = std::move(reply);
  return result;
}

}  // namespace xrpc::net
