#include "net/connection_pool.h"

#include <unistd.h>

namespace xrpc::net {

namespace {

bool Expired(const std::chrono::steady_clock::time_point& released_at,
             int64_t idle_timeout_millis,
             const std::chrono::steady_clock::time_point& now) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                               released_at)
             .count() >= idle_timeout_millis;
}

}  // namespace

int HttpConnectionPool::Acquire(const std::string& peer_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto now = std::chrono::steady_clock::now();
  auto it = idle_.find(peer_key);
  if (it != idle_.end()) {
    std::deque<IdleConn>& conns = it->second;
    while (!conns.empty()) {
      IdleConn conn = conns.back();  // LIFO: most recently released
      conns.pop_back();
      if (Expired(conn.released_at, options_.idle_timeout_millis, now)) {
        ::close(conn.fd);
        ++expired_;
        if (metrics_) metrics_->RecordConnectionExpired();
        continue;
      }
      ++hits_;
      if (metrics_) metrics_->RecordConnectionReuse(/*hit=*/true);
      return conn.fd;
    }
  }
  ++misses_;
  if (metrics_) metrics_->RecordConnectionReuse(/*hit=*/false);
  return -1;
}

void HttpConnectionPool::Release(const std::string& peer_key, int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  std::deque<IdleConn>& conns = idle_[peer_key];
  if (conns.size() >= options_.max_idle_per_peer) {
    ::close(fd);
    return;
  }
  conns.push_back({fd, std::chrono::steady_clock::now()});
  if (metrics_) {
    metrics_->RecordPooledConnections(
        static_cast<int64_t>(IdleCountLocked()));
  }
}

void HttpConnectionPool::CloseAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [peer, conns] : idle_) {
    for (const IdleConn& conn : conns) ::close(conn.fd);
    conns.clear();
  }
  idle_.clear();
}

int64_t HttpConnectionPool::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t HttpConnectionPool::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t HttpConnectionPool::expired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return expired_;
}

size_t HttpConnectionPool::idle_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return IdleCountLocked();
}

size_t HttpConnectionPool::IdleCountLocked() const {
  size_t total = 0;
  for (const auto& [peer, conns] : idle_) total += conns.size();
  return total;
}

}  // namespace xrpc::net
