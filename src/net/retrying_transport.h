#ifndef XRPC_NET_RETRYING_TRANSPORT_H_
#define XRPC_NET_RETRYING_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>

#include "base/prng.h"
#include "net/circuit_breaker.h"
#include "net/rpc_metrics.h"
#include "net/transport.h"

namespace xrpc::net {

/// Retry/timeout policy of a RetryingTransport.
///
/// Only transient transport failures (StatusCode::kNetworkError) are ever
/// retried; application-level outcomes (SOAP Faults, isolation errors, ...)
/// are final. Backoff before attempt k (k >= 2) is
///   min(initial_backoff_us * multiplier^(k-2), max_backoff_us)
/// scaled by a deterministic jitter factor in
/// [1 - jitter_fraction, 1 + jitter_fraction] drawn from an injected-seed
/// PRNG, so a fixed seed pins the entire schedule.
struct RetryPolicy {
  int max_attempts = 3;              ///< 1 = no retries
  int64_t initial_backoff_us = 1000; ///< backoff before the first retry
  double backoff_multiplier = 2.0;
  int64_t max_backoff_us = 1'000'000;
  double jitter_fraction = 0.2;      ///< 0 disables jitter
  /// Deadline per attempt, enforced against the transport's modeled wire
  /// time (PostResult::network_micros). 0 disables the check. An attempt
  /// whose reply arrives past the deadline is abandoned: the reply is
  /// discarded and the attempt counts as a (retryable) timeout.
  int64_t request_timeout_us = 0;
};

/// Transport decorator adding per-request timeouts and exponential-backoff
/// retries on transient failures (the dependable-substrate assumption of
/// the paper's Section 4/6 made explicit).
///
/// Delivery semantics:
///  - Read-only envelopes: at-least-once. A transient failure is retried up
///    to max_attempts times; the XRPC request is side-effect-free, so a
///    duplicate delivery is harmless.
///  - Updating envelopes (updCall="true", Section 4.4): at-most-once. The
///    envelope is NEVER re-sent after its first transmission — a transport
///    failure leaves the delivery status in doubt, and a blind retry could
///    apply the update twice, breaking XQUF/2PC soundness. The failure is
///    surfaced to the caller (who owns the transactional recovery path).
///
/// End-to-end deadline budgets: when the envelope carries an xrpc:deadline
/// header (remaining micros), the whole Post — attempts, timeouts and
/// backoff waits combined — never exceeds that budget. Each attempt's
/// timeout is the smaller of the per-attempt policy timeout and the
/// remaining budget; once the budget is exhausted the Post returns
/// kDeadlineExceeded (which is final, never retried). Elapsed time is the
/// larger of the modeled spend (attempt wire time + backoffs, correct
/// inside virtual-time parallel groups where the clock is frozen) and the
/// injected `now` clock's progress (correct for wall-clock transports).
///
/// Per-peer circuit breaking: with set_circuit_breaker(), a destination
/// whose circuit is open fails instantly without a dial. Attempt outcomes
/// age the breaker uniformly: transport failures AND timeout-abandoned
/// replies count as failures (a peer that answers too late is as dead as
/// one that never answers), while any response — including a SOAP Fault —
/// proves liveness and closes the circuit.
///
/// Time is fully injectable: `sleep` performs the backoff (default: no-op,
/// correct for the virtual-time simulated network when the caller accounts
/// backoff via metrics; pass a real sleeper for wall-clock transports) and
/// the jitter PRNG is seeded explicitly, so retry schedules are
/// deterministic and unit-testable.
class RetryingTransport : public Transport {
 public:
  using SleepFn = std::function<void(int64_t micros)>;
  using NowFn = std::function<int64_t()>;

  RetryingTransport(Transport* inner, RetryPolicy policy,
                    RpcMetrics* metrics = nullptr, SleepFn sleep = nullptr,
                    uint64_t jitter_seed = 42, NowFn now = nullptr)
      : inner_(inner),
        policy_(policy),
        metrics_(metrics),
        sleep_(std::move(sleep)),
        now_(std::move(now)),
        prng_(jitter_seed) {}

  StatusOr<PostResult> Post(const std::string& dest_uri,
                            const std::string& body) override;

  /// Forwarded to the wrapped transport (parallel fan-out bracketing).
  void BeginParallelGroup() override { inner_->BeginParallelGroup(); }
  void EndParallelGroup() override { inner_->EndParallelGroup(); }

  /// Deterministic backoff (with jitter) before retry number `retry`
  /// (1-based). Exposed for tests and for callers modeling virtual time.
  ///
  /// Thread-safe: parallel multi-destination dispatch retries several
  /// destinations concurrently through ONE RetryingTransport, so the jitter
  /// PRNG state is mutex-guarded. Under a fixed seed the drawn jitter
  /// sequence is still exactly the seed's sequence; concurrent callers
  /// consume from it in arrival order.
  int64_t BackoffMicros(int retry);

  const RetryPolicy& policy() const { return policy_; }
  void set_policy(RetryPolicy policy) { policy_ = policy; }

  /// True if `body` is an XRPC envelope carrying an updating call
  /// (updCall="true"), which must not be retransmitted.
  static bool IsUpdatingEnvelope(const std::string& body);

  /// Remaining-budget micros of the envelope's xrpc:deadline header;
  /// nullopt when the envelope carries none (or it is unreadable — the
  /// server-side parser is the validator, not this sniffer).
  static std::optional<int64_t> ExtractDeadlineMicros(const std::string& body);

  /// Attaches a per-peer circuit breaker consulted before every attempt
  /// and fed with every attempt outcome. Not owned; may be null.
  void set_circuit_breaker(CircuitBreaker* breaker) { breaker_ = breaker; }
  CircuitBreaker* circuit_breaker() const { return breaker_; }

 private:
  Transport* inner_;
  RetryPolicy policy_;
  RpcMetrics* metrics_;
  SleepFn sleep_;
  NowFn now_;
  CircuitBreaker* breaker_ = nullptr;
  std::mutex prng_mu_;  ///< guards prng_ under concurrent per-dest retries
  DeterministicPrng prng_;
};

}  // namespace xrpc::net

#endif  // XRPC_NET_RETRYING_TRANSPORT_H_
