#ifndef XRPC_NET_HTTP_H_
#define XRPC_NET_HTTP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/statusor.h"
#include "net/connection_pool.h"
#include "net/rpc_metrics.h"
#include "net/transport.h"
#include "net/uri.h"

namespace xrpc::net {

/// One parsed HTTP/1.1 message (request or response): start line, headers
/// (names lower-cased, values whitespace-trimmed, wire order preserved) and
/// the Content-Length-delimited body.
struct HttpMessage {
  std::string start_line;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Value of the first header named `name` (must be given lower-case);
  /// "" when absent.
  std::string Header(const std::string& name) const;

  /// True when the peer asked for the connection to be torn down after this
  /// message (a Connection header containing the "close" token).
  bool WantsClose() const;
};

/// Reads one HTTP/1.1 message from `fd`. `carry` holds bytes received past
/// the end of the previous message on the same connection (keep-alive /
/// pipelining); it is consumed first and refilled with any over-read.
///
/// Header parsing is strict and line-by-line: the Content-Length *name*
/// must match exactly (case-insensitive) — an "X-Content-Length" header is
/// somebody else's header, not a body length — and a duplicated or
/// unparsable Content-Length is rejected as kInvalidArgument (servers
/// answer 400: with two lengths on record the body boundary is ambiguous
/// and request smuggling becomes possible).
///
/// Disconnect taxonomy (all kNetworkError):
///  - "connection closed before message": EOF before the first byte — how a
///    kept-alive connection looks when the peer closed it while idle.
///  - "truncated HTTP message" / "truncated body: got X of Y bytes": EOF
///    mid-headers / mid-body — a real broken exchange.
///  - "recv timed out": the armed SO_RCVTIMEO expired.
StatusOr<HttpMessage> ReadHttpMessage(int fd, std::string* carry);

/// Minimal embedded HTTP/1.1 server (the paper uses the ultra-light SHTTPD
/// daemon; this plays the same role). Accepts POST requests, hands the body
/// to a SoapEndpoint, and replies with the SOAP response body.
///
/// Concurrency model: one accept thread feeds a bounded queue drained by a
/// fixed pool of `workers` connection-serving threads. When the queue is
/// full, new connections are answered "503 Service Unavailable" and closed
/// (admission control) instead of growing an unbounded thread set.
///
/// Connections are persistent (HTTP/1.1 keep-alive): a worker serves
/// requests off one connection until the client sends Connection: close,
/// the idle timeout expires, the per-connection request cap is reached, or
/// the request is malformed. Teardown is graceful — shutdown(SHUT_WR), then
/// drain until the peer's EOF, then close — so the last response is never
/// destroyed by a RST racing unread input.
class HttpServer {
 public:
  struct Options {
    int workers = 8;                 ///< connection-serving threads
    int accept_queue_capacity = 64;  ///< pending connections before 503
    /// recv timeout while waiting for the next request on a kept-alive
    /// connection; an idle client past this is silently disconnected.
    int64_t keep_alive_idle_millis = 5000;
    /// Requests served per connection before forcing close; 0 = unlimited.
    int max_requests_per_connection = 0;
    /// Bound on the post-shutdown drain-for-peer-EOF wait during graceful
    /// connection teardown (both 503 rejections and normal keep-alive
    /// closes). Small keeps worker threads responsive; large tolerates
    /// slow clients still flushing pipelined bytes.
    int64_t drain_timeout_millis = 200;
  };

  explicit HttpServer(SoapEndpoint* endpoint)
      : endpoint_(endpoint), options_(Options()) {}
  HttpServer(SoapEndpoint* endpoint, Options options)
      : endpoint_(endpoint), options_(options) {}
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0 = pick a free port), starts
  /// the worker pool and the accept loop. Returns the bound port.
  StatusOr<int> Start(int port = 0);

  /// Stops accepting, wakes and joins all threads, closes every connection.
  void Stop();

  int port() const { return port_; }
  const Options& options() const { return options_; }

  /// Optional registry receiving accept-queue depth and overload events.
  void set_metrics(RpcMetrics* metrics) { metrics_ = metrics; }

  /// Observability: totals since Start().
  int64_t connections_accepted() const { return connections_accepted_; }
  int64_t requests_served() const { return requests_served_; }
  int64_t overload_rejections() const { return overload_rejections_; }

 private:
  void AcceptLoop();
  void WorkerLoop();
  /// Serves requests off `fd` until the connection ends. Does NOT close the
  /// fd (the worker does, under mu_). Returns true when a response was sent
  /// and the teardown should be graceful (shutdown + drain).
  bool ServeConnection(int fd);
  /// Answers a connection the accept queue cannot hold.
  void RejectOverload(int fd);

  SoapEndpoint* endpoint_;
  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;

  std::mutex mu_;  ///< guards queue_, active_fds_, stopping_
  std::condition_variable queue_cv_;
  std::deque<int> queue_;      ///< accepted fds awaiting a worker
  std::set<int> active_fds_;   ///< fds currently owned by a worker
  bool stopping_ = false;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> requests_served_{0};
  std::atomic<int64_t> overload_rejections_{0};
  RpcMetrics* metrics_ = nullptr;
};

/// Transport that POSTs over real loopback/host TCP sockets, with HTTP/1.1
/// keep-alive: completed exchanges park their socket in a per-peer
/// HttpConnectionPool and later Posts reuse it, skipping the TCP handshake
/// (the per-call latency the paper's Table 2 amortises with bulk; pooling
/// removes the per-*message* setup cost on top).
///
/// Stale-connection re-dial rule (composes with RetryingTransport's
/// at-most-once rule for updating calls):
///  - send failed on a reused socket: an incomplete request cannot have
///    been executed, so re-dialing is safe for ANY body, updating included.
///  - zero-byte EOF (no response bytes at all) on a reused socket: the peer
///    closed the idle connection under us. Re-dial only for non-updating
///    bodies — for an updating call the request may have been consumed just
///    before the close, and re-sending could apply the update twice.
///  - any partial response, or any failure on a freshly dialed socket:
///    surfaced to the caller; the retry policy above this layer decides.
class HttpTransport : public Transport {
 public:
  HttpTransport() = default;
  explicit HttpTransport(HttpConnectionPool::Options pool_options)
      : pool_(pool_options) {}

  StatusOr<PostResult> Post(const std::string& dest_uri,
                            const std::string& body) override;

  /// Socket send/receive timeout applied to every exchange (0 = none).
  void set_timeout_millis(int64_t millis) { timeout_millis_ = millis; }
  int64_t timeout_millis() const { return timeout_millis_; }

  /// Keep-alive on/off (default on). Off = Connection: close per request —
  /// the pre-pooling behavior, kept selectable for A/B benchmarks.
  void set_keep_alive(bool on) { keep_alive_ = on; }
  bool keep_alive() const { return keep_alive_; }

  /// Optional registry receiving connection reuse / expiry events.
  void set_metrics(RpcMetrics* metrics) {
    metrics_ = metrics;
    pool_.set_metrics(metrics);
  }

  HttpConnectionPool& pool() { return pool_; }

 private:
  StatusOr<std::string> Exchange(const XrpcUri& uri, const std::string& body);

  int64_t timeout_millis_ = 0;
  std::atomic<bool> keep_alive_{true};
  HttpConnectionPool pool_;
  RpcMetrics* metrics_ = nullptr;
};

/// Low-level helper: POST `body` to host:port/path on a one-shot
/// (Connection: close) socket, return the response body.
/// `timeout_millis` > 0 arms SO_RCVTIMEO/SO_SNDTIMEO on the socket; a
/// stalled peer then yields a NetworkError mentioning "timed out".
StatusOr<std::string> HttpPost(const std::string& host, int port,
                               const std::string& path,
                               const std::string& body,
                               int64_t timeout_millis = 0);

}  // namespace xrpc::net

#endif  // XRPC_NET_HTTP_H_
