#ifndef XRPC_NET_HTTP_H_
#define XRPC_NET_HTTP_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/statusor.h"
#include "net/transport.h"

namespace xrpc::net {

/// Minimal embedded HTTP/1.1 server (the paper uses the ultra-light SHTTPD
/// daemon; this plays the same role). Accepts POST requests, hands the body
/// to a SoapEndpoint, and replies with the SOAP response body.
///
/// One thread accepts connections; each request is served synchronously on
/// a short-lived worker thread (connection: close semantics). Finished
/// workers are reaped by the accept loop so the worker set stays bounded.
class HttpServer {
 public:
  explicit HttpServer(SoapEndpoint* endpoint) : endpoint_(endpoint) {}
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0 = pick a free port) and
  /// starts the accept loop. Returns the bound port.
  StatusOr<int> Start(int port = 0);

  /// Stops accepting and joins all threads.
  void Stop();

  int port() const { return port_; }

 private:
  /// One connection-serving thread plus its completion flag (set by the
  /// worker itself just before exiting, read by the reaper).
  struct Worker {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void AcceptLoop();
  void ServeConnection(int fd);
  /// Joins and removes workers whose `done` flag is set. mu_ must be held.
  void ReapFinishedLocked();

  SoapEndpoint* endpoint_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex mu_;                 ///< guards workers_
  std::vector<Worker> workers_;
};

/// Transport that POSTs over real loopback/host TCP sockets.
class HttpTransport : public Transport {
 public:
  StatusOr<PostResult> Post(const std::string& dest_uri,
                            const std::string& body) override;

  /// Socket send/receive timeout applied to every exchange (0 = none).
  void set_timeout_millis(int64_t millis) { timeout_millis_ = millis; }
  int64_t timeout_millis() const { return timeout_millis_; }

 private:
  int64_t timeout_millis_ = 0;
};

/// Low-level helper: POST `body` to host:port/path, return response body.
/// `timeout_millis` > 0 arms SO_RCVTIMEO/SO_SNDTIMEO on the socket; a
/// stalled peer then yields a NetworkError mentioning "timed out".
StatusOr<std::string> HttpPost(const std::string& host, int port,
                               const std::string& path,
                               const std::string& body,
                               int64_t timeout_millis = 0);

}  // namespace xrpc::net

#endif  // XRPC_NET_HTTP_H_
