#ifndef XRPC_NET_RPC_METRICS_H_
#define XRPC_NET_RPC_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace xrpc::net {

/// Log-scale latency histogram: bucket i counts samples in
/// [2^(i-1), 2^i) microseconds (bucket 0: [0, 1) us). The last bucket is
/// open-ended. Covers 1 us .. ~2 s, which spans everything from loopback
/// round-trips to WAN latency spikes.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 22;

  void Record(int64_t micros);

  int64_t samples() const { return samples_; }
  int64_t total_micros() const { return total_micros_; }
  int64_t min_micros() const { return samples_ == 0 ? 0 : min_micros_; }
  int64_t max_micros() const { return max_micros_; }
  int64_t bucket(int i) const { return counts_[static_cast<size_t>(i)]; }

  /// Smallest upper bound b such that >= p (in [0,1]) of samples are < b.
  /// Returns the bucket upper bound (power of two), 0 when empty.
  int64_t PercentileUpperBound(double p) const;

  /// One-line rendering: "n=… mean=…us p50<…us p99<…us max=…us".
  std::string Summary() const;

  void Merge(const LatencyHistogram& other);
  void Reset();

 private:
  std::array<int64_t, kBuckets> counts_{};
  int64_t samples_ = 0;
  int64_t total_micros_ = 0;
  int64_t min_micros_ = 0;
  int64_t max_micros_ = 0;
};

/// Counters and latency distribution of RPC traffic toward (client side) or
/// at (server side) one peer.
struct PeerRpcStats {
  int64_t requests = 0;       ///< POST exchanges attempted (client side)
  int64_t failures = 0;       ///< requests that ended in a non-OK status
  int64_t retries = 0;        ///< re-transmissions after a transient failure
  int64_t timeouts = 0;       ///< requests abandoned past the deadline
  int64_t bytes_sent = 0;     ///< request envelope bytes
  int64_t bytes_received = 0; ///< response envelope bytes
  LatencyHistogram latency;   ///< per-exchange wire latency (modeled or real)

  void Merge(const PeerRpcStats& other);
};

/// Thread-safe registry of transport/RPC observability counters, shared by
/// RetryingTransport (retries, backoff, timeouts), RpcClient (requests,
/// bytes, latency, per-peer breakdown) and XrpcService (server-side request
/// and call counts). One registry typically lives in the PeerNetwork and is
/// dumped by the bench harness; you cannot tune (or trust) Bulk RPC latency
/// amortization without this visibility.
class RpcMetrics {
 public:
  RpcMetrics() = default;
  RpcMetrics(const RpcMetrics&) = delete;
  RpcMetrics& operator=(const RpcMetrics&) = delete;

  /// Client side: one POST exchange toward `peer` completed (ok or not).
  void RecordClientRequest(const std::string& peer, size_t bytes_sent,
                           size_t bytes_received, int64_t latency_micros,
                           bool ok);
  /// Client side: a transient failure toward `peer` is being retried.
  void RecordRetry(const std::string& peer);
  /// Client side: a request toward `peer` exceeded its deadline.
  void RecordTimeout(const std::string& peer);
  /// Client side: backoff slept/modeled before a retry.
  void RecordBackoff(int64_t micros);

  /// Server side: `self` handled a request carrying `calls` bulk calls.
  void RecordServerRequest(const std::string& self, int64_t calls, bool ok);

  /// Simulated network: a fault (drop/truncation/forced failure) fired.
  void RecordInjectedFault();

  // -- Connection pooling / parallel dispatch counters ---------------------

  /// Client side: a connection toward a peer was acquired — from the pool
  /// (`hit`) or by dialing a fresh socket.
  void RecordConnectionReuse(bool hit);
  /// Client side: an idle pooled connection expired and was closed.
  void RecordConnectionExpired();
  /// Client side: a pooled connection turned out broken mid-exchange and
  /// the request was safely re-dialed on a fresh socket.
  void RecordStaleConnectionRetry();
  /// Client side: pool-size gauge after a release; the maximum is reported.
  void RecordPooledConnections(int64_t idle_now);
  /// Client side: one parallel fan-out group of `destinations` Bulk RPCs
  /// dispatched; `max_in_flight` is the dispatch pool's occupancy peak.
  void RecordDispatchFanout(int64_t destinations, int64_t max_in_flight);
  /// Client side: modeled/measured wire latency of ONE destination within a
  /// fan-out group (the distribution whose max is the critical path).
  void RecordFanoutDestinationLatency(int64_t micros);
  /// Server side: accept-queue depth gauge after an enqueue; max reported.
  void RecordAcceptQueueDepth(int64_t depth);
  /// Server side: a connection was rejected with 503 (accept queue full).
  void RecordServerOverload();

  // -- Transaction (2PC / WAL) counters -----------------------------------

  /// Coordinator: a phase-2 Commit was re-sent after a delivery failure.
  void RecordTxnCommitRetry();
  /// In-doubt gauge moved by `delta` (+1 parked / restored, -1 resolved).
  void RecordTxnInDoubt(int64_t delta);
  /// A peer replayed its WAL (crash recovery / restart).
  void RecordTxnRecovery();
  /// `count` WAL records were read back during a replay.
  void RecordTxnReplayedRecords(int64_t count);
  /// A prepared in-doubt session was reconstructed from the WAL.
  void RecordTxnRecoveredSession();
  /// A participant answered a re-delivered Commit/Rollback/Prepare from its
  /// decided-outcome record instead of re-executing it.
  void RecordTxnIdempotentReply();

  // -- Deadline / cancellation / circuit-breaker counters ------------------

  /// Client side: a request toward `peer` gave up because its end-to-end
  /// deadline budget ran out (before, between, or during attempts).
  void RecordDeadlineExceeded(const std::string& peer);
  /// Server side: `self` rejected an already-expired request before
  /// compiling or executing anything.
  void RecordServerDeadlineReject(const std::string& self);
  /// Server side: an engine observed cooperative cancellation mid-query.
  void RecordCancellation();
  /// Server side: a cancelled query's repeatable-read snapshot was
  /// released immediately (instead of waiting for session expiry).
  void RecordSessionReleased();

  /// Circuit breaker transitions: closed->open, open->half-open (probe
  /// admitted), half-open->closed.
  void RecordBreakerOpen();
  void RecordBreakerHalfOpen();
  void RecordBreakerClose();
  /// A request toward `peer` was refused locally by an open circuit
  /// (no dial happened).
  void RecordBreakerShortCircuit(const std::string& peer);
  /// Circuit breaker: an admitted half-open probe was abandoned without an
  /// outcome (e.g. the deadline budget ran out before the dial) and the
  /// probe slot was released back to the open state.
  void RecordBreakerProbeAbandoned();

  // -- Morsel executor counters (DESIGN.md §15) ----------------------------

  /// One operator invocation ran under the morsel executor: `op` is the
  /// operator tag ("step", "docorder", ...), `morsels` how many chunks it
  /// was split into, `wall_us` the operator's wall clock, `wait_us` how
  /// long the issuing thread was blocked waiting on pool workers, and
  /// `parallel` whether a worker pool actually ran it (false = serial
  /// fallback: pool absent, table too small, or operator not provably
  /// iteration-independent). Called from pool-adjacent code — like every
  /// other Record method this is a mutex-guarded read-modify-write, never
  /// a bare `++` on shared state.
  void RecordExecOp(const std::string& op, int64_t morsels, int64_t wall_us,
                    int64_t wait_us, bool parallel);

  /// Per-morsel busy times of one operator invocation, retained verbatim
  /// (only while exec sampling is on: bench_parallel_exec models k-worker
  /// makespans from these on hosts with fewer physical cores).
  void RecordExecMorselTimes(const std::vector<int64_t>& micros);
  /// Enables/disables retention of per-morsel time batches (default off —
  /// unbounded retention is a bench-only affordance).
  void set_exec_sampling(bool on);

  // -- Shard failover / catalog-fencing counters ---------------------------

  /// Client side: a read-only shard subcall failed retriably at `from_peer`
  /// and is being re-issued to the next replica.
  void RecordFailoverAttempt(const std::string& from_peer);
  /// Client side: a replica answered a subcall its primary could not.
  void RecordFailoverSuccess();
  /// Client side: every replica of a shard was exhausted; the subcall
  /// failed with the last replica's error.
  void RecordFailoverExhausted();
  /// Server side: `self` fenced off a shard-routed call whose sender
  /// decomposed against a different catalog version.
  void RecordStaleCatalogReject(const std::string& self);
  /// Client side: a StaleCatalog fault was observed on a subcall.
  void RecordStaleCatalogObserved();
  /// Client side: the shard map was refetched and the query re-routed.
  void RecordStaleCatalogReroute();
  /// Client side: Catalog::RouteKey could not place a key of `collection`
  /// and the caller broadcast to every shard instead.
  void RecordRouteMiss(const std::string& collection);

  // -- Replica data-fencing / anti-entropy counters (DESIGN.md §17) --------

  /// Server side: `self` fenced off a shard-routed call because its applied
  /// fragment data version lags the one the caller routed by.
  void RecordStaleReplicaReject(const std::string& self);
  /// Client side: a StaleReplica fault was observed on a subcall.
  void RecordStaleReplicaObserved();
  /// Client side: failover skipped a lagging copy and moved to the next.
  void RecordStaleReplicaSkip();

  /// Repair: one fragment's applied-vs-authoritative version was checked.
  void RecordReplicaLagCheck();
  /// Repair: a lagging fragment was found, `gap` versions behind.
  void RecordReplicaLagging(int64_t gap);
  /// Repair: a lagging fragment was brought up to date.
  void RecordRepairResync();
  /// Repair: `count` missed committed PULs were replayed from a donor WAL.
  void RecordRepairPulsReplayed(int64_t count);
  /// Repair: a fragment was caught up by full transfer (donor WAL gap or
  /// delta-replay digest mismatch).
  void RecordRepairFullTransfer();
  /// Repair: every donor was exhausted and the fragment stayed lagging.
  void RecordRepairFailed();

  // -- Multi-tenant workload counters (DESIGN.md §16) ----------------------

  /// Terminal outcome of one tenant query as classified by the workload
  /// driver (src/load): admitted+ok, rejected at admission (arrival already
  /// past its deadline), deadline exceeded mid-flight, or failed outright.
  enum class TenantOutcome { kOk, kRejected, kDeadlineExceeded, kFailed };

  /// One tenant query finished with `outcome`; `latency_us` is
  /// completion − arrival (open-loop: includes queueing delay) and
  /// `slo_met` whether it completed ok within the tenant's SLO target.
  /// Rejected queries carry no latency sample (they never ran).
  void RecordTenantQuery(const std::string& tenant, TenantOutcome outcome,
                         int64_t latency_us, bool slo_met);

  /// Aggregated per-tenant workload stats.
  struct TenantStats {
    int64_t offered = 0;            ///< arrivals (all outcomes)
    int64_t ok = 0;                 ///< completed successfully
    int64_t rejected = 0;           ///< admission-rejected (never dispatched)
    int64_t deadline_exceeded = 0;  ///< gave up past the deadline budget
    int64_t failed = 0;             ///< any other terminal error
    int64_t slo_met = 0;            ///< ok AND within the latency SLO
    LatencyHistogram latency;       ///< arrival→completion, admitted only
  };
  std::map<std::string, TenantStats> tenant_stats() const;

  // -- Aggregate accessors (totals over all peers) ------------------------
  int64_t requests() const;
  int64_t failures() const;
  int64_t retries() const;
  int64_t timeouts() const;
  int64_t bytes_sent() const;
  int64_t bytes_received() const;
  int64_t backoff_micros() const;
  int64_t injected_faults() const;
  int64_t server_requests() const;
  int64_t server_calls() const;
  int64_t server_faults() const;
  int64_t conn_reuse_hits() const;
  int64_t conn_dials() const;
  int64_t conn_expired() const;
  int64_t conn_stale_retries() const;
  int64_t pool_max_idle() const;
  int64_t fanout_groups() const;
  int64_t fanout_destinations() const;
  int64_t dispatch_max_in_flight() const;
  int64_t accept_queue_max_depth() const;
  int64_t server_overloads() const;
  /// Copy of the per-destination fan-out latency histogram.
  LatencyHistogram fanout_latency() const;
  int64_t txn_commit_retries() const;
  int64_t txn_in_doubt() const;
  int64_t txn_recoveries() const;
  int64_t txn_replayed_records() const;
  int64_t txn_recovered_sessions() const;
  int64_t txn_idempotent_replies() const;
  int64_t deadline_client_exceeded() const;
  int64_t deadline_server_rejects() const;
  int64_t cancellations() const;
  int64_t sessions_released() const;
  int64_t breaker_opens() const;
  int64_t breaker_half_opens() const;
  int64_t breaker_closes() const;
  int64_t breaker_short_circuits() const;
  int64_t breaker_probe_abandoned() const;
  int64_t failover_attempts() const;
  int64_t failover_successes() const;
  int64_t failover_exhausted() const;
  int64_t stale_catalog_rejects() const;
  int64_t stale_catalog_observed() const;
  int64_t stale_catalog_reroutes() const;
  int64_t route_misses() const;
  int64_t stale_replica_rejects() const;
  int64_t stale_replica_observed() const;
  int64_t stale_replica_skips() const;
  int64_t replica_lag_checks() const;
  int64_t replica_lagging_found() const;
  int64_t replica_max_gap() const;
  int64_t repair_resyncs() const;
  int64_t repair_puls_replayed() const;
  int64_t repair_full_transfers() const;
  int64_t repair_failures() const;

  /// Aggregated morsel-executor stats of one operator tag.
  struct ExecOpStats {
    int64_t ops = 0;           ///< operator invocations
    int64_t parallel_ops = 0;  ///< invocations that ran on the pool
    int64_t morsels = 0;       ///< morsels executed
    int64_t wall_micros = 0;   ///< operator wall clock
    int64_t wait_micros = 0;   ///< issuing-thread time blocked on workers
  };
  std::map<std::string, ExecOpStats> exec_ops() const;
  int64_t exec_ops_total() const;
  int64_t exec_parallel_ops() const;
  int64_t exec_morsels() const;
  int64_t exec_wait_micros() const;
  /// Retained per-morsel time batches (exec sampling on), one vector per
  /// recorded operator invocation.
  std::vector<std::vector<int64_t>> exec_morsel_batches() const;

  /// Copy of the latency histogram aggregated over all peers.
  LatencyHistogram latency() const;
  /// Copy of one peer's client-side stats ({} if never seen).
  PeerRpcStats PeerStats(const std::string& peer) const;

  /// Multi-line human-readable dump (totals, histogram, per-peer table);
  /// what the bench binaries print.
  std::string Report() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, PeerRpcStats> per_peer_;  // client side, by dest URI
  int64_t backoff_micros_ = 0;
  int64_t injected_faults_ = 0;

  struct TxnStats {
    int64_t commit_retries = 0;
    int64_t in_doubt = 0;  ///< gauge, not a counter
    int64_t recoveries = 0;
    int64_t replayed_records = 0;
    int64_t recovered_sessions = 0;
    int64_t idempotent_replies = 0;
  };
  TxnStats txn_;

  struct ConnStats {
    int64_t reuse_hits = 0;
    int64_t dials = 0;
    int64_t expired = 0;
    int64_t stale_retries = 0;
    int64_t pool_max_idle = 0;  ///< gauge maximum, not a counter
  };
  ConnStats conn_;

  struct DispatchStats {
    int64_t fanout_groups = 0;
    int64_t fanout_destinations = 0;
    int64_t max_in_flight = 0;  ///< gauge maximum
    LatencyHistogram fanout_latency;
  };
  DispatchStats dispatch_;

  int64_t accept_queue_max_depth_ = 0;  ///< gauge maximum
  int64_t server_overloads_ = 0;

  struct DeadlineStats {
    int64_t client_exceeded = 0;
    int64_t server_rejects = 0;
    int64_t cancellations = 0;
    int64_t sessions_released = 0;
  };
  DeadlineStats deadline_;

  struct BreakerStats {
    int64_t opens = 0;
    int64_t half_opens = 0;
    int64_t closes = 0;
    int64_t short_circuits = 0;
    int64_t probes_abandoned = 0;
  };
  BreakerStats breaker_;

  struct FailoverStats {
    int64_t attempts = 0;
    int64_t successes = 0;
    int64_t exhausted = 0;
    std::map<std::string, int64_t> per_failed_peer;  ///< by primary URI
  };
  FailoverStats failover_;

  struct StaleCatalogStats {
    int64_t server_rejects = 0;
    int64_t observed = 0;
    int64_t reroutes = 0;
  };
  StaleCatalogStats stale_;

  struct StaleReplicaStats {
    int64_t server_rejects = 0;
    int64_t observed = 0;
    int64_t skips = 0;
  };
  StaleReplicaStats stale_replica_;

  struct RepairStats {
    int64_t lag_checks = 0;
    int64_t lagging_found = 0;
    int64_t max_gap = 0;  ///< gauge maximum
    int64_t resyncs = 0;
    int64_t puls_replayed = 0;
    int64_t full_transfers = 0;
    int64_t failures = 0;
  };
  RepairStats repair_;

  struct RouteStats {
    int64_t misses = 0;
    std::map<std::string, int64_t> per_collection;
  };
  RouteStats route_;

  struct ServerStats {
    int64_t requests = 0;
    int64_t calls = 0;
    int64_t faults = 0;
  };
  std::map<std::string, ServerStats> per_server_;  // server side, by self URI

  std::map<std::string, TenantStats> per_tenant_;  // workload driver, by name

  std::map<std::string, ExecOpStats> exec_ops_;  // morsel executor, by op
  bool exec_sampling_ = false;
  std::vector<std::vector<int64_t>> exec_batches_;
};

}  // namespace xrpc::net

#endif  // XRPC_NET_RPC_METRICS_H_
