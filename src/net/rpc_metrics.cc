#include "net/rpc_metrics.h"

#include <algorithm>
#include <cstdio>

namespace xrpc::net {

namespace {

int BucketFor(int64_t micros) {
  int b = 0;
  int64_t bound = 1;
  while (b < LatencyHistogram::kBuckets - 1 && micros >= bound) {
    bound <<= 1;
    ++b;
  }
  return b;
}

std::string FormatCount(int64_t v) { return std::to_string(v); }

}  // namespace

void LatencyHistogram::Record(int64_t micros) {
  if (micros < 0) micros = 0;
  counts_[static_cast<size_t>(BucketFor(micros))]++;
  if (samples_ == 0 || micros < min_micros_) min_micros_ = micros;
  if (micros > max_micros_) max_micros_ = micros;
  total_micros_ += micros;
  ++samples_;
}

int64_t LatencyHistogram::PercentileUpperBound(double p) const {
  if (samples_ == 0) return 0;
  int64_t rank = static_cast<int64_t>(p * static_cast<double>(samples_));
  if (rank >= samples_) rank = samples_ - 1;
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts_[static_cast<size_t>(b)];
    if (seen > rank) return int64_t{1} << b;
  }
  return int64_t{1} << (kBuckets - 1);
}

std::string LatencyHistogram::Summary() const {
  if (samples_ == 0) return "n=0";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%lld mean=%lldus p50<%lldus p99<%lldus max=%lldus",
                static_cast<long long>(samples_),
                static_cast<long long>(total_micros_ / samples_),
                static_cast<long long>(PercentileUpperBound(0.50)),
                static_cast<long long>(PercentileUpperBound(0.99)),
                static_cast<long long>(max_micros_));
  return buf;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int b = 0; b < kBuckets; ++b) {
    counts_[static_cast<size_t>(b)] += other.counts_[static_cast<size_t>(b)];
  }
  if (other.samples_ > 0) {
    if (samples_ == 0 || other.min_micros_ < min_micros_) {
      min_micros_ = other.min_micros_;
    }
    max_micros_ = std::max(max_micros_, other.max_micros_);
  }
  samples_ += other.samples_;
  total_micros_ += other.total_micros_;
}

void LatencyHistogram::Reset() { *this = LatencyHistogram(); }

void PeerRpcStats::Merge(const PeerRpcStats& other) {
  requests += other.requests;
  failures += other.failures;
  retries += other.retries;
  timeouts += other.timeouts;
  bytes_sent += other.bytes_sent;
  bytes_received += other.bytes_received;
  latency.Merge(other.latency);
}

void RpcMetrics::RecordClientRequest(const std::string& peer,
                                     size_t bytes_sent, size_t bytes_received,
                                     int64_t latency_micros, bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  PeerRpcStats& s = per_peer_[peer];
  ++s.requests;
  if (!ok) ++s.failures;
  s.bytes_sent += static_cast<int64_t>(bytes_sent);
  s.bytes_received += static_cast<int64_t>(bytes_received);
  s.latency.Record(latency_micros);
}

void RpcMetrics::RecordRetry(const std::string& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  ++per_peer_[peer].retries;
}

void RpcMetrics::RecordTimeout(const std::string& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  ++per_peer_[peer].timeouts;
}

void RpcMetrics::RecordBackoff(int64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  backoff_micros_ += micros;
}

void RpcMetrics::RecordServerRequest(const std::string& self, int64_t calls,
                                     bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats& s = per_server_[self];
  ++s.requests;
  s.calls += calls;
  if (!ok) ++s.faults;
}

void RpcMetrics::RecordInjectedFault() {
  std::lock_guard<std::mutex> lock(mu_);
  ++injected_faults_;
}

void RpcMetrics::RecordConnectionReuse(bool hit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (hit) {
    ++conn_.reuse_hits;
  } else {
    ++conn_.dials;
  }
}

void RpcMetrics::RecordConnectionExpired() {
  std::lock_guard<std::mutex> lock(mu_);
  ++conn_.expired;
}

void RpcMetrics::RecordStaleConnectionRetry() {
  std::lock_guard<std::mutex> lock(mu_);
  ++conn_.stale_retries;
}

void RpcMetrics::RecordPooledConnections(int64_t idle_now) {
  std::lock_guard<std::mutex> lock(mu_);
  conn_.pool_max_idle = std::max(conn_.pool_max_idle, idle_now);
}

void RpcMetrics::RecordDispatchFanout(int64_t destinations,
                                      int64_t max_in_flight) {
  std::lock_guard<std::mutex> lock(mu_);
  ++dispatch_.fanout_groups;
  dispatch_.fanout_destinations += destinations;
  dispatch_.max_in_flight = std::max(dispatch_.max_in_flight, max_in_flight);
}

void RpcMetrics::RecordFanoutDestinationLatency(int64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  dispatch_.fanout_latency.Record(micros);
}

void RpcMetrics::RecordAcceptQueueDepth(int64_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  accept_queue_max_depth_ = std::max(accept_queue_max_depth_, depth);
}

void RpcMetrics::RecordServerOverload() {
  std::lock_guard<std::mutex> lock(mu_);
  ++server_overloads_;
}

void RpcMetrics::RecordTxnCommitRetry() {
  std::lock_guard<std::mutex> lock(mu_);
  ++txn_.commit_retries;
}

void RpcMetrics::RecordTxnInDoubt(int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  txn_.in_doubt += delta;
  if (txn_.in_doubt < 0) txn_.in_doubt = 0;
}

void RpcMetrics::RecordTxnRecovery() {
  std::lock_guard<std::mutex> lock(mu_);
  ++txn_.recoveries;
}

void RpcMetrics::RecordTxnReplayedRecords(int64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  txn_.replayed_records += count;
}

void RpcMetrics::RecordTxnRecoveredSession() {
  std::lock_guard<std::mutex> lock(mu_);
  ++txn_.recovered_sessions;
}

void RpcMetrics::RecordTxnIdempotentReply() {
  std::lock_guard<std::mutex> lock(mu_);
  ++txn_.idempotent_replies;
}

void RpcMetrics::RecordDeadlineExceeded(const std::string& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  (void)peer;
  ++deadline_.client_exceeded;
}

void RpcMetrics::RecordServerDeadlineReject(const std::string& self) {
  std::lock_guard<std::mutex> lock(mu_);
  (void)self;
  ++deadline_.server_rejects;
}

void RpcMetrics::RecordCancellation() {
  std::lock_guard<std::mutex> lock(mu_);
  ++deadline_.cancellations;
}

void RpcMetrics::RecordSessionReleased() {
  std::lock_guard<std::mutex> lock(mu_);
  ++deadline_.sessions_released;
}

void RpcMetrics::RecordBreakerOpen() {
  std::lock_guard<std::mutex> lock(mu_);
  ++breaker_.opens;
}

void RpcMetrics::RecordBreakerHalfOpen() {
  std::lock_guard<std::mutex> lock(mu_);
  ++breaker_.half_opens;
}

void RpcMetrics::RecordBreakerClose() {
  std::lock_guard<std::mutex> lock(mu_);
  ++breaker_.closes;
}

void RpcMetrics::RecordBreakerShortCircuit(const std::string& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  (void)peer;
  ++breaker_.short_circuits;
}

void RpcMetrics::RecordBreakerProbeAbandoned() {
  std::lock_guard<std::mutex> lock(mu_);
  ++breaker_.probes_abandoned;
}

void RpcMetrics::RecordFailoverAttempt(const std::string& from_peer) {
  std::lock_guard<std::mutex> lock(mu_);
  ++failover_.attempts;
  ++failover_.per_failed_peer[from_peer];
}

void RpcMetrics::RecordFailoverSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  ++failover_.successes;
}

void RpcMetrics::RecordFailoverExhausted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++failover_.exhausted;
}

void RpcMetrics::RecordStaleCatalogReject(const std::string& self) {
  std::lock_guard<std::mutex> lock(mu_);
  (void)self;
  ++stale_.server_rejects;
}

void RpcMetrics::RecordStaleCatalogObserved() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stale_.observed;
}

void RpcMetrics::RecordStaleCatalogReroute() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stale_.reroutes;
}

void RpcMetrics::RecordRouteMiss(const std::string& collection) {
  std::lock_guard<std::mutex> lock(mu_);
  ++route_.misses;
  ++route_.per_collection[collection];
}

void RpcMetrics::RecordStaleReplicaReject(const std::string& self) {
  std::lock_guard<std::mutex> lock(mu_);
  (void)self;
  ++stale_replica_.server_rejects;
}

void RpcMetrics::RecordStaleReplicaObserved() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stale_replica_.observed;
}

void RpcMetrics::RecordStaleReplicaSkip() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stale_replica_.skips;
}

void RpcMetrics::RecordReplicaLagCheck() {
  std::lock_guard<std::mutex> lock(mu_);
  ++repair_.lag_checks;
}

void RpcMetrics::RecordReplicaLagging(int64_t gap) {
  std::lock_guard<std::mutex> lock(mu_);
  ++repair_.lagging_found;
  if (gap > repair_.max_gap) repair_.max_gap = gap;
}

void RpcMetrics::RecordRepairResync() {
  std::lock_guard<std::mutex> lock(mu_);
  ++repair_.resyncs;
}

void RpcMetrics::RecordRepairPulsReplayed(int64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  repair_.puls_replayed += count;
}

void RpcMetrics::RecordRepairFullTransfer() {
  std::lock_guard<std::mutex> lock(mu_);
  ++repair_.full_transfers;
}

void RpcMetrics::RecordRepairFailed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++repair_.failures;
}

void RpcMetrics::RecordTenantQuery(const std::string& tenant,
                                   TenantOutcome outcome, int64_t latency_us,
                                   bool slo_met) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantStats& s = per_tenant_[tenant];
  ++s.offered;
  switch (outcome) {
    case TenantOutcome::kOk: ++s.ok; break;
    case TenantOutcome::kRejected: ++s.rejected; break;
    case TenantOutcome::kDeadlineExceeded: ++s.deadline_exceeded; break;
    case TenantOutcome::kFailed: ++s.failed; break;
  }
  if (slo_met) ++s.slo_met;
  if (outcome != TenantOutcome::kRejected) s.latency.Record(latency_us);
}

std::map<std::string, RpcMetrics::TenantStats> RpcMetrics::tenant_stats()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return per_tenant_;
}

void RpcMetrics::RecordExecOp(const std::string& op, int64_t morsels,
                              int64_t wall_us, int64_t wait_us,
                              bool parallel) {
  std::lock_guard<std::mutex> lock(mu_);
  ExecOpStats& s = exec_ops_[op];
  ++s.ops;
  if (parallel) ++s.parallel_ops;
  s.morsels += morsels;
  s.wall_micros += wall_us;
  s.wait_micros += wait_us;
}

void RpcMetrics::RecordExecMorselTimes(const std::vector<int64_t>& micros) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!exec_sampling_) return;
  exec_batches_.push_back(micros);
}

void RpcMetrics::set_exec_sampling(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  exec_sampling_ = on;
  if (!on) exec_batches_.clear();
}

#define XRPC_METRICS_SUM(field)                          \
  std::lock_guard<std::mutex> lock(mu_);                 \
  int64_t total = 0;                                     \
  for (const auto& [peer, s] : per_peer_) total += s.field; \
  return total

int64_t RpcMetrics::requests() const { XRPC_METRICS_SUM(requests); }
int64_t RpcMetrics::failures() const { XRPC_METRICS_SUM(failures); }
int64_t RpcMetrics::retries() const { XRPC_METRICS_SUM(retries); }
int64_t RpcMetrics::timeouts() const { XRPC_METRICS_SUM(timeouts); }
int64_t RpcMetrics::bytes_sent() const { XRPC_METRICS_SUM(bytes_sent); }
int64_t RpcMetrics::bytes_received() const { XRPC_METRICS_SUM(bytes_received); }

#undef XRPC_METRICS_SUM

int64_t RpcMetrics::backoff_micros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backoff_micros_;
}

int64_t RpcMetrics::injected_faults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_faults_;
}

int64_t RpcMetrics::server_requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [peer, s] : per_server_) total += s.requests;
  return total;
}

int64_t RpcMetrics::server_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [peer, s] : per_server_) total += s.calls;
  return total;
}

int64_t RpcMetrics::server_faults() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [peer, s] : per_server_) total += s.faults;
  return total;
}

int64_t RpcMetrics::conn_reuse_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conn_.reuse_hits;
}

int64_t RpcMetrics::conn_dials() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conn_.dials;
}

int64_t RpcMetrics::conn_expired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conn_.expired;
}

int64_t RpcMetrics::conn_stale_retries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conn_.stale_retries;
}

int64_t RpcMetrics::pool_max_idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conn_.pool_max_idle;
}

int64_t RpcMetrics::fanout_groups() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dispatch_.fanout_groups;
}

int64_t RpcMetrics::fanout_destinations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dispatch_.fanout_destinations;
}

int64_t RpcMetrics::dispatch_max_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dispatch_.max_in_flight;
}

int64_t RpcMetrics::accept_queue_max_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accept_queue_max_depth_;
}

int64_t RpcMetrics::server_overloads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return server_overloads_;
}

LatencyHistogram RpcMetrics::fanout_latency() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dispatch_.fanout_latency;
}

int64_t RpcMetrics::txn_commit_retries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return txn_.commit_retries;
}

int64_t RpcMetrics::txn_in_doubt() const {
  std::lock_guard<std::mutex> lock(mu_);
  return txn_.in_doubt;
}

int64_t RpcMetrics::txn_recoveries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return txn_.recoveries;
}

int64_t RpcMetrics::txn_replayed_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return txn_.replayed_records;
}

int64_t RpcMetrics::txn_recovered_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return txn_.recovered_sessions;
}

int64_t RpcMetrics::txn_idempotent_replies() const {
  std::lock_guard<std::mutex> lock(mu_);
  return txn_.idempotent_replies;
}

int64_t RpcMetrics::deadline_client_exceeded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deadline_.client_exceeded;
}

int64_t RpcMetrics::deadline_server_rejects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deadline_.server_rejects;
}

int64_t RpcMetrics::cancellations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deadline_.cancellations;
}

int64_t RpcMetrics::sessions_released() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deadline_.sessions_released;
}

int64_t RpcMetrics::breaker_opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breaker_.opens;
}

int64_t RpcMetrics::breaker_half_opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breaker_.half_opens;
}

int64_t RpcMetrics::breaker_closes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breaker_.closes;
}

int64_t RpcMetrics::breaker_short_circuits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breaker_.short_circuits;
}

int64_t RpcMetrics::breaker_probe_abandoned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breaker_.probes_abandoned;
}

int64_t RpcMetrics::failover_attempts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failover_.attempts;
}

int64_t RpcMetrics::failover_successes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failover_.successes;
}

int64_t RpcMetrics::failover_exhausted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failover_.exhausted;
}

int64_t RpcMetrics::stale_catalog_rejects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stale_.server_rejects;
}

int64_t RpcMetrics::stale_catalog_observed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stale_.observed;
}

int64_t RpcMetrics::stale_catalog_reroutes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stale_.reroutes;
}

int64_t RpcMetrics::route_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return route_.misses;
}

int64_t RpcMetrics::stale_replica_rejects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stale_replica_.server_rejects;
}

int64_t RpcMetrics::stale_replica_observed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stale_replica_.observed;
}

int64_t RpcMetrics::stale_replica_skips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stale_replica_.skips;
}

int64_t RpcMetrics::replica_lag_checks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return repair_.lag_checks;
}

int64_t RpcMetrics::replica_lagging_found() const {
  std::lock_guard<std::mutex> lock(mu_);
  return repair_.lagging_found;
}

int64_t RpcMetrics::replica_max_gap() const {
  std::lock_guard<std::mutex> lock(mu_);
  return repair_.max_gap;
}

int64_t RpcMetrics::repair_resyncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return repair_.resyncs;
}

int64_t RpcMetrics::repair_puls_replayed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return repair_.puls_replayed;
}

int64_t RpcMetrics::repair_full_transfers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return repair_.full_transfers;
}

int64_t RpcMetrics::repair_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return repair_.failures;
}

std::map<std::string, RpcMetrics::ExecOpStats> RpcMetrics::exec_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exec_ops_;
}

#define XRPC_METRICS_EXEC_SUM(field)                        \
  std::lock_guard<std::mutex> lock(mu_);                    \
  int64_t total = 0;                                        \
  for (const auto& [op, s] : exec_ops_) total += s.field;   \
  return total

int64_t RpcMetrics::exec_ops_total() const { XRPC_METRICS_EXEC_SUM(ops); }
int64_t RpcMetrics::exec_parallel_ops() const {
  XRPC_METRICS_EXEC_SUM(parallel_ops);
}
int64_t RpcMetrics::exec_morsels() const { XRPC_METRICS_EXEC_SUM(morsels); }
int64_t RpcMetrics::exec_wait_micros() const {
  XRPC_METRICS_EXEC_SUM(wait_micros);
}

#undef XRPC_METRICS_EXEC_SUM

std::vector<std::vector<int64_t>> RpcMetrics::exec_morsel_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exec_batches_;
}

LatencyHistogram RpcMetrics::latency() const {
  std::lock_guard<std::mutex> lock(mu_);
  LatencyHistogram merged;
  for (const auto& [peer, s] : per_peer_) merged.Merge(s.latency);
  return merged;
}

PeerRpcStats RpcMetrics::PeerStats(const std::string& peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = per_peer_.find(peer);
  return it == per_peer_.end() ? PeerRpcStats{} : it->second;
}

std::string RpcMetrics::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  PeerRpcStats total;
  for (const auto& [peer, s] : per_peer_) total.Merge(s);

  std::string out = "RPC metrics\n";
  out += "  requests=" + FormatCount(total.requests) +
         " failures=" + FormatCount(total.failures) +
         " retries=" + FormatCount(total.retries) +
         " timeouts=" + FormatCount(total.timeouts) +
         " injected_faults=" + FormatCount(injected_faults_) + "\n";
  out += "  bytes_sent=" + FormatCount(total.bytes_sent) +
         " bytes_received=" + FormatCount(total.bytes_received) +
         " backoff_us=" + FormatCount(backoff_micros_) + "\n";
  out += "  latency: " + total.latency.Summary() + "\n";
  if (total.latency.samples() > 0) {
    out += "  latency histogram (us):";
    for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
      int64_t c = total.latency.bucket(b);
      if (c == 0) continue;
      out += " [<" + FormatCount(int64_t{1} << b) + "]=" + FormatCount(c);
    }
    out += "\n";
  }
  for (const auto& [peer, s] : per_peer_) {
    out += "  peer " + peer + ": requests=" + FormatCount(s.requests) +
           " failures=" + FormatCount(s.failures) +
           " retries=" + FormatCount(s.retries) +
           " bytes_sent=" + FormatCount(s.bytes_sent) +
           " bytes_received=" + FormatCount(s.bytes_received) + " " +
           s.latency.Summary() + "\n";
  }
  for (const auto& [self, s] : per_server_) {
    out += "  server " + self + ": requests=" + FormatCount(s.requests) +
           " calls=" + FormatCount(s.calls) +
           " faults=" + FormatCount(s.faults) + "\n";
  }
  out += "  connections: reuse_hits=" + FormatCount(conn_.reuse_hits) +
         " dials=" + FormatCount(conn_.dials) +
         " expired=" + FormatCount(conn_.expired) +
         " stale_retries=" + FormatCount(conn_.stale_retries) +
         " pool_max_idle=" + FormatCount(conn_.pool_max_idle) + "\n";
  out += "  fanout: groups=" + FormatCount(dispatch_.fanout_groups) +
         " destinations=" + FormatCount(dispatch_.fanout_destinations) +
         " max_in_flight=" + FormatCount(dispatch_.max_in_flight) +
         " per-dest latency: " + dispatch_.fanout_latency.Summary() + "\n";
  out += "  server accept queue: max_depth=" +
         FormatCount(accept_queue_max_depth_) +
         " overload_503=" + FormatCount(server_overloads_) + "\n";
  out += "  txn: commit_retries=" + FormatCount(txn_.commit_retries) +
         " in_doubt=" + FormatCount(txn_.in_doubt) +
         " recoveries=" + FormatCount(txn_.recoveries) +
         " replayed_records=" + FormatCount(txn_.replayed_records) +
         " recovered_sessions=" + FormatCount(txn_.recovered_sessions) +
         " idempotent_replies=" + FormatCount(txn_.idempotent_replies) + "\n";
  out += "  breaker: opens=" + FormatCount(breaker_.opens) +
         " half_opens=" + FormatCount(breaker_.half_opens) +
         " closes=" + FormatCount(breaker_.closes) +
         " short_circuits=" + FormatCount(breaker_.short_circuits) +
         " probes_abandoned=" + FormatCount(breaker_.probes_abandoned) + "\n";
  out += "  failover: attempts=" + FormatCount(failover_.attempts) +
         " successes=" + FormatCount(failover_.successes) +
         " exhausted=" + FormatCount(failover_.exhausted);
  for (const auto& [peer, n] : failover_.per_failed_peer) {
    out += " from[" + peer + "]=" + FormatCount(n);
  }
  out += "\n";
  out += "  stale-catalog: rejects=" + FormatCount(stale_.server_rejects) +
         " observed=" + FormatCount(stale_.observed) +
         " reroutes=" + FormatCount(stale_.reroutes) + "\n";
  out += "  stale-replica: server_rejects=" +
         FormatCount(stale_replica_.server_rejects) +
         " observed=" + FormatCount(stale_replica_.observed) +
         " skips=" + FormatCount(stale_replica_.skips) + "\n";
  out += "  replica-lag: checks=" + FormatCount(repair_.lag_checks) +
         " lagging_found=" + FormatCount(repair_.lagging_found) +
         " max_gap=" + FormatCount(repair_.max_gap) + "\n";
  out += "  repair: resyncs=" + FormatCount(repair_.resyncs) +
         " puls_replayed=" + FormatCount(repair_.puls_replayed) +
         " full_transfers=" + FormatCount(repair_.full_transfers) +
         " failed=" + FormatCount(repair_.failures) + "\n";
  out += "  route: key_misses=" + FormatCount(route_.misses);
  for (const auto& [collection, n] : route_.per_collection) {
    out += " miss[" + collection + "]=" + FormatCount(n);
  }
  out += "\n";
  out += "  deadline: client_exceeded=" +
         FormatCount(deadline_.client_exceeded) +
         " server_rejects=" + FormatCount(deadline_.server_rejects) +
         " cancellations=" + FormatCount(deadline_.cancellations) +
         " sessions_released=" + FormatCount(deadline_.sessions_released) +
         "\n";
  for (const auto& [tenant, s] : per_tenant_) {
    out += "  tenant " + tenant + ": offered=" + FormatCount(s.offered) +
           " ok=" + FormatCount(s.ok) +
           " rejected=" + FormatCount(s.rejected) +
           " deadline_exceeded=" + FormatCount(s.deadline_exceeded) +
           " failed=" + FormatCount(s.failed) +
           " slo_met=" + FormatCount(s.slo_met) + "\n";
    out += "  slo " + tenant + ": " + s.latency.Summary() + "\n";
  }
  if (!exec_ops_.empty()) {
    int64_t ops = 0, par = 0, morsels = 0, wait_us = 0;
    for (const auto& [op, s] : exec_ops_) {
      ops += s.ops;
      par += s.parallel_ops;
      morsels += s.morsels;
      wait_us += s.wait_micros;
    }
    out += "  exec: ops=" + FormatCount(ops) +
           " parallel_ops=" + FormatCount(par) +
           " morsels=" + FormatCount(morsels) +
           " wait_us=" + FormatCount(wait_us) + "\n";
    for (const auto& [op, s] : exec_ops_) {
      out += "  exec-op " + op + ": ops=" + FormatCount(s.ops) +
             " parallel_ops=" + FormatCount(s.parallel_ops) +
             " morsels=" + FormatCount(s.morsels) +
             " wall_us=" + FormatCount(s.wall_micros) +
             " wait_us=" + FormatCount(s.wait_micros) + "\n";
    }
  }
  return out;
}

void RpcMetrics::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  per_peer_.clear();
  per_server_.clear();
  per_tenant_.clear();
  backoff_micros_ = 0;
  injected_faults_ = 0;
  txn_ = TxnStats{};
  conn_ = ConnStats{};
  dispatch_ = DispatchStats{};
  accept_queue_max_depth_ = 0;
  server_overloads_ = 0;
  deadline_ = DeadlineStats{};
  breaker_ = BreakerStats{};
  failover_ = FailoverStats{};
  stale_ = StaleCatalogStats{};
  stale_replica_ = StaleReplicaStats{};
  repair_ = RepairStats{};
  route_ = RouteStats{};
  exec_ops_.clear();
  exec_batches_.clear();
}

}  // namespace xrpc::net
