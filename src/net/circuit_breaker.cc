#include "net/circuit_breaker.h"

namespace xrpc::net {

bool CircuitBreaker::Allow(const std::string& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  PeerState& s = peers_[peer];
  switch (s.state) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      if (now_us_() - s.opened_at_us < policy_.cooldown_us) {
        if (metrics_ != nullptr) metrics_->RecordBreakerShortCircuit(peer);
        return false;
      }
      // Cooldown over: this caller becomes the half-open probe.
      s.state = State::kHalfOpen;
      s.probe_in_flight = true;
      if (metrics_ != nullptr) metrics_->RecordBreakerHalfOpen();
      return true;
    }
    case State::kHalfOpen: {
      if (s.probe_in_flight) {
        // One probe at a time; everyone else keeps getting refused until
        // the probe's outcome decides the circuit.
        if (metrics_ != nullptr) metrics_->RecordBreakerShortCircuit(peer);
        return false;
      }
      s.probe_in_flight = true;
      return true;
    }
  }
  return true;
}

void CircuitBreaker::RecordSuccess(const std::string& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  PeerState& s = peers_[peer];
  if (s.state != State::kClosed && metrics_ != nullptr) {
    metrics_->RecordBreakerClose();
  }
  s = PeerState{};  // closed, zero consecutive failures
}

void CircuitBreaker::RecordFailure(const std::string& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  PeerState& s = peers_[peer];
  switch (s.state) {
    case State::kClosed:
      if (++s.consecutive_failures >= policy_.failure_threshold) {
        s.state = State::kOpen;
        s.opened_at_us = now_us_();
        if (metrics_ != nullptr) metrics_->RecordBreakerOpen();
      }
      break;
    case State::kHalfOpen:
      // Failed probe: back to a fresh cooldown.
      s.state = State::kOpen;
      s.opened_at_us = now_us_();
      s.probe_in_flight = false;
      if (metrics_ != nullptr) metrics_->RecordBreakerOpen();
      break;
    case State::kOpen:
      // A request admitted before the circuit opened can still fail while
      // open; it carries no new information.
      break;
  }
}

void CircuitBreaker::OnProbeAbandoned(const std::string& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  PeerState& s = it->second;
  if (s.state != State::kHalfOpen || !s.probe_in_flight) return;
  // No outcome learned: reopen, but keep the original opened_at so the
  // already-elapsed cooldown is not forfeited and the next Allow() can
  // probe right away.
  s.state = State::kOpen;
  s.probe_in_flight = false;
  if (metrics_ != nullptr) metrics_->RecordBreakerProbeAbandoned();
}

CircuitBreaker::State CircuitBreaker::GetState(const std::string& peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.find(peer);
  return it == peers_.end() ? State::kClosed : it->second.state;
}

void CircuitBreaker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  peers_.clear();
}

}  // namespace xrpc::net
