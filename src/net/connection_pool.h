#ifndef XRPC_NET_CONNECTION_POOL_H_
#define XRPC_NET_CONNECTION_POOL_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "net/rpc_metrics.h"

namespace xrpc::net {

/// Client-side pool of idle HTTP/1.1 keep-alive connections, keyed by peer
/// ("host:port"). HttpTransport acquires a pooled socket before dialing a
/// fresh one and releases it back after a reusable exchange, so a burst of
/// requests toward one peer pays the TCP handshake once instead of per
/// request (the persistent peer-to-peer query channels DXQ assumes).
///
/// Entries expire after `idle_timeout_millis` of sitting idle: the peer's
/// server closes idle connections on its own schedule, and an expired-here
/// socket is closed rather than handed out, keeping the stale-connection
/// race window small. LIFO reuse (most recently released first) keeps the
/// hot connection hot and lets the cold tail expire.
class HttpConnectionPool {
 public:
  struct Options {
    size_t max_idle_per_peer = 8;      ///< overflow connections are closed
    int64_t idle_timeout_millis = 2000;
  };

  HttpConnectionPool() : options_(Options()) {}
  explicit HttpConnectionPool(Options options) : options_(options) {}
  ~HttpConnectionPool() { CloseAll(); }

  HttpConnectionPool(const HttpConnectionPool&) = delete;
  HttpConnectionPool& operator=(const HttpConnectionPool&) = delete;

  /// Pops an idle, non-expired connection toward `peer_key`; -1 when none
  /// (the caller dials). Expired entries found on the way are closed and
  /// counted.
  int Acquire(const std::string& peer_key);

  /// Returns a connection for reuse. Closes it instead when the per-peer
  /// cap is reached.
  void Release(const std::string& peer_key, int fd);

  /// Closes every pooled connection.
  void CloseAll();

  /// Observability: counters since construction, and the current idle size.
  int64_t hits() const;
  int64_t misses() const;
  int64_t expired() const;
  size_t idle_count() const;

  /// Optional registry receiving reuse hit/miss, expiry and pool-size
  /// gauge events.
  void set_metrics(RpcMetrics* metrics) { metrics_ = metrics; }

  const Options& options() const { return options_; }

 private:
  struct IdleConn {
    int fd;
    std::chrono::steady_clock::time_point released_at;
  };

  size_t IdleCountLocked() const;

  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, std::deque<IdleConn>> idle_;  // LIFO per peer
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t expired_ = 0;
  RpcMetrics* metrics_ = nullptr;
};

}  // namespace xrpc::net

#endif  // XRPC_NET_CONNECTION_POOL_H_
