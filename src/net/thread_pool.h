#ifndef XRPC_NET_THREAD_POOL_H_
#define XRPC_NET_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xrpc::net {

/// Bounded worker pool for parallel multi-destination dispatch: a fixed
/// number of threads drain a FIFO task queue. Concurrency is bounded by the
/// thread count (destinations beyond it queue), so a 100-way fan-out cannot
/// spawn 100 sockets'/threads' worth of pressure at once.
///
/// Tasks must not Submit() back into the same pool and then block on the
/// result — with all workers blocked that way the queue never drains.
/// (Nested `execute at` calls made by server handlers use their own
/// RpcClient without a dispatch pool, so the XRPC layer never re-enters.)
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();  ///< drains the queue, then joins all workers

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution on a worker thread. The caller owns
  /// completion tracking (promise/latch); Submit never blocks.
  void Submit(std::function<void()> fn);

  int size() const { return static_cast<int>(threads_.size()); }

  /// Highest number of tasks that were running simultaneously — the pool
  /// occupancy gauge reported by RpcMetrics.
  int64_t peak_in_flight() const;
  /// Tasks currently running.
  int64_t in_flight() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
  int64_t in_flight_ = 0;
  int64_t peak_in_flight_ = 0;
};

}  // namespace xrpc::net

#endif  // XRPC_NET_THREAD_POOL_H_
