#ifndef XRPC_NET_THREAD_POOL_H_
#define XRPC_NET_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xrpc::net {

/// Bounded worker pool for parallel multi-destination dispatch and the
/// morsel executor: a fixed number of threads drain a FIFO task queue.
/// Concurrency is bounded by the thread count (destinations beyond it
/// queue), so a 100-way fan-out cannot spawn 100 sockets'/threads' worth
/// of pressure at once.
///
/// Tasks must not Submit() back into the same pool and then block on the
/// result — with all workers blocked that way the queue never drains.
/// (Nested `execute at` calls made by server handlers use their own
/// RpcClient without a dispatch pool, and morsel-worker evaluators are
/// constructed pool-less, so neither layer re-enters.)
///
/// A task that throws does NOT take the worker (or the process) down: the
/// exception is caught at the worker loop, counted, and retained for the
/// submitter to collect via TakeUncaughtException(). Submitters that need
/// per-task exception routing should use TaskGroup, which captures each
/// task's exception before it ever reaches the pool.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();  ///< drains the queue, then joins all workers

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution on a worker thread. The caller owns
  /// completion tracking (promise/latch); Submit never blocks.
  void Submit(std::function<void()> fn);

  int size() const { return static_cast<int>(threads_.size()); }

  /// Highest number of tasks that were running simultaneously — the pool
  /// occupancy gauge reported by RpcMetrics.
  int64_t peak_in_flight() const;
  /// Tasks currently running.
  int64_t in_flight() const;

  /// Exceptions that escaped raw-Submit() tasks (caught at the worker
  /// loop). TaskGroup tasks never land here — the group captures theirs.
  int64_t uncaught_exceptions() const;
  /// Removes and returns the oldest retained task exception; null when
  /// none is pending.
  std::exception_ptr TakeUncaughtException();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
  int64_t in_flight_ = 0;
  int64_t peak_in_flight_ = 0;
  int64_t uncaught_exceptions_ = 0;
  std::deque<std::exception_ptr> pending_exceptions_;
};

/// Structured fork-join over a ThreadPool: Run() submits tasks, Wait()
/// blocks until every one finished and reports the first failure in
/// SUBMISSION order (deterministic regardless of scheduling). With a null
/// pool the group degenerates to inline serial execution, so callers can
/// write one code path for both modes.
///
/// A task that throws is captured by the group (it never reaches the
/// pool's uncaught tally); Wait() returns its exception_ptr.
class TaskGroup {
 public:
  /// `pool` may be null: Run() then executes inline on the caller.
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  /// Waits for stragglers; any uncollected exception is dropped.
  ~TaskGroup() { (void)Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `fn`. Must not be called concurrently with itself or Wait().
  void Run(std::function<void()> fn);

  /// Blocks until all Run() tasks completed. Returns the exception of the
  /// earliest-submitted task that threw, or null if none did. Resets the
  /// group for reuse.
  std::exception_ptr Wait();

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable done_cv_;
  int64_t outstanding_ = 0;
  size_t next_index_ = 0;
  std::vector<std::exception_ptr> exceptions_;  // by submission index
};

}  // namespace xrpc::net

#endif  // XRPC_NET_THREAD_POOL_H_
