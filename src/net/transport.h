#ifndef XRPC_NET_TRANSPORT_H_
#define XRPC_NET_TRANSPORT_H_

#include <cstdint>
#include <string>

#include "base/statusor.h"

namespace xrpc::net {

/// Result of an HTTP POST exchange.
struct PostResult {
  std::string body;           ///< response entity body (a SOAP envelope)
  int64_t network_micros = 0; ///< modeled wire time (simulated transports)
  int64_t server_micros = 0;  ///< measured handler time at the destination
};

/// Abstract request/response transport carrying SOAP messages over HTTP
/// POST. Implementations: SimulatedNetwork (in-process, virtual-time cost
/// model) and HttpTransport (real sockets).
class Transport {
 public:
  virtual ~Transport() = default;

  /// POSTs `body` to the peer addressed by `dest_uri` (an xrpc:// URI) and
  /// returns the response body. A non-2xx HTTP status or connectivity
  /// failure yields a kNetworkError status; SOAP Faults travel as ordinary
  /// 200 responses and are decoded by the SOAP layer.
  virtual StatusOr<PostResult> Post(const std::string& dest_uri,
                                    const std::string& body) = 0;

  /// Brackets a group of Posts that are LOGICALLY CONCURRENT (one
  /// multi-destination fan-out). Real transports ignore this — genuine
  /// parallelism makes wall-clock time the max over destinations by itself.
  /// Virtual-time transports (SimulatedNetwork) use it to advance their
  /// clock by the maximum per-destination cost instead of the sum, so the
  /// simulated clock agrees with what the real loopback path measures.
  /// Decorators must forward both calls to the wrapped transport.
  virtual void BeginParallelGroup() {}
  virtual void EndParallelGroup() {}
};

/// RAII bracket for Transport::Begin/EndParallelGroup.
class ParallelGroupScope {
 public:
  explicit ParallelGroupScope(Transport* transport) : transport_(transport) {
    transport_->BeginParallelGroup();
  }
  ~ParallelGroupScope() { transport_->EndParallelGroup(); }

  ParallelGroupScope(const ParallelGroupScope&) = delete;
  ParallelGroupScope& operator=(const ParallelGroupScope&) = delete;

 private:
  Transport* transport_;
};

/// Server-side request handler: receives the POSTed SOAP envelope (and the
/// request path) and produces the SOAP reply body.
class SoapEndpoint {
 public:
  virtual ~SoapEndpoint() = default;
  virtual StatusOr<std::string> Handle(const std::string& path,
                                       const std::string& body) = 0;
};

}  // namespace xrpc::net

#endif  // XRPC_NET_TRANSPORT_H_
