#ifndef XRPC_NET_SIMULATED_NETWORK_H_
#define XRPC_NET_SIMULATED_NETWORK_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "base/clock.h"
#include "net/transport.h"
#include "net/uri.h"

namespace xrpc::net {

/// Wire model of the simulated network.
///
/// The paper's testbed is two machines on 1 Gb/s Ethernet; the defaults
/// model that LAN: ~100 us round-trip-half latency and 125 bytes/us
/// (= 1 Gb/s) of bandwidth. A WAN profile simply raises latency.
struct NetworkProfile {
  int64_t latency_us = 100;          ///< one-way latency per message
  double bandwidth_bytes_per_us = 125.0;

  /// Modeled one-way cost of a message of `bytes` bytes.
  int64_t MessageCost(size_t bytes) const {
    return latency_us +
           static_cast<int64_t>(static_cast<double>(bytes) /
                                bandwidth_bytes_per_us);
  }
};

/// In-process transport connecting registered peers, with a deterministic
/// virtual-time cost model and failure injection.
///
/// Post() accounts 2 one-way message costs (request + response) plus the
/// server handler's execution; the cost is returned in
/// PostResult::network_micros and also accumulated on the global virtual
/// clock (which therefore reflects *serialized* network time — callers
/// dispatching in parallel take the max of per-destination costs instead).
class SimulatedNetwork : public Transport {
 public:
  explicit SimulatedNetwork(NetworkProfile profile = {}) : profile_(profile) {}

  SimulatedNetwork(const SimulatedNetwork&) = delete;
  SimulatedNetwork& operator=(const SimulatedNetwork&) = delete;

  /// Registers (or replaces) the SOAP endpoint of peer `host:port`.
  void RegisterPeer(const XrpcUri& address, SoapEndpoint* endpoint);

  /// Makes a peer unreachable (connection refused) until re-registered.
  void DisconnectPeer(const XrpcUri& address);

  /// Injects a one-shot failure: the next Post() fails with this status.
  void FailNextPost(Status status);

  StatusOr<PostResult> Post(const std::string& dest_uri,
                            const std::string& body) override;

  /// Simulated network statistics.
  int64_t messages_sent() const { return messages_; }
  int64_t bytes_sent() const { return bytes_sent_; }
  int64_t bytes_received() const { return bytes_received_; }
  VirtualClock& clock() { return clock_; }
  const NetworkProfile& profile() const { return profile_; }
  void set_profile(NetworkProfile profile) { profile_ = profile; }

  void ResetStats();

 private:
  NetworkProfile profile_;
  std::map<std::string, SoapEndpoint*> peers_;  // keyed by host:port
  VirtualClock clock_;
  int64_t messages_ = 0;
  int64_t bytes_sent_ = 0;
  int64_t bytes_received_ = 0;
  Status injected_failure_;
  bool has_injected_failure_ = false;
  std::mutex mu_;
};

}  // namespace xrpc::net

#endif  // XRPC_NET_SIMULATED_NETWORK_H_
