#ifndef XRPC_NET_SIMULATED_NETWORK_H_
#define XRPC_NET_SIMULATED_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "base/clock.h"
#include "base/prng.h"
#include "net/rpc_metrics.h"
#include "net/transport.h"
#include "net/uri.h"

namespace xrpc::net {

/// Wire model of the simulated network.
///
/// The paper's testbed is two machines on 1 Gb/s Ethernet; the defaults
/// model that LAN: ~100 us round-trip-half latency and 125 bytes/us
/// (= 1 Gb/s) of bandwidth. A WAN profile simply raises latency.
struct NetworkProfile {
  int64_t latency_us = 100;          ///< one-way latency per message
  double bandwidth_bytes_per_us = 125.0;

  /// Modeled one-way cost of a message of `bytes` bytes.
  int64_t MessageCost(size_t bytes) const {
    return latency_us +
           static_cast<int64_t>(static_cast<double>(bytes) /
                                bandwidth_bytes_per_us);
  }
};

/// Deterministic fault-injection schedule of the simulated network. All
/// "every Nth" counters share one Post() serial number (1-based, reset by
/// set_fault_profile); the drop coin flips come from a seeded PRNG, so a
/// profile reproduces the exact same fault sequence on every run.
///
/// Fault semantics mirror distinct real-world failure points:
///  - drop / fail-every-Nth: the REQUEST is lost; the destination never
///    sees it (safe to retry even for updates, though the client cannot
///    know that).
///  - truncated response: the request IS delivered and handled (server
///    side effects happen!) but the RESPONSE is lost — the failure mode
///    that makes blind retransmission of updating calls unsound.
///  - latency spike: the exchange succeeds but pays `latency_spike_us`
///    extra wire time (what a per-request timeout turns into a failure).
struct FaultProfile {
  double drop_probability = 0.0;     ///< P(request lost), per Post()
  uint64_t seed = 1;                 ///< PRNG seed for the drop coin flips
  int fail_every_nth = 0;            ///< 0 = off; n: every nth Post fails
  int truncate_every_nth = 0;        ///< 0 = off; n: every nth response lost
  int latency_spike_every_nth = 0;   ///< 0 = off; n: every nth Post is slow
  int64_t latency_spike_us = 0;      ///< extra wire time on a spike

  bool Active() const {
    return drop_probability > 0 || fail_every_nth > 0 ||
           truncate_every_nth > 0 || latency_spike_every_nth > 0;
  }
};

/// In-process transport connecting registered peers, with a deterministic
/// virtual-time cost model and failure injection.
///
/// Post() accounts 2 one-way message costs (request + response) plus the
/// server handler's execution; the cost is returned in
/// PostResult::network_micros and also accumulated on the global virtual
/// clock (which therefore reflects *serialized* network time — callers
/// dispatching in parallel take the max of per-destination costs instead).
class SimulatedNetwork : public Transport {
 public:
  explicit SimulatedNetwork(NetworkProfile profile = {})
      : profile_(profile), fault_prng_(fault_profile_.seed) {}

  SimulatedNetwork(const SimulatedNetwork&) = delete;
  SimulatedNetwork& operator=(const SimulatedNetwork&) = delete;

  /// Registers (or replaces) the SOAP endpoint of peer `host:port`.
  void RegisterPeer(const XrpcUri& address, SoapEndpoint* endpoint);

  /// Makes a peer unreachable (connection refused) until re-registered.
  void DisconnectPeer(const XrpcUri& address);

  /// Queues a one-shot failure: each queued status fails one subsequent
  /// Post() (FIFO), before the request reaches the destination.
  void FailNextPost(Status status);

  /// Installs the deterministic fault-injection schedule (and resets its
  /// serial counter + PRNG). Pass {} to disable.
  void set_fault_profile(FaultProfile profile);
  const FaultProfile& fault_profile() const { return fault_profile_; }

  /// Injected faults (queued failures, drops, forced failures, truncated
  /// responses) that have fired so far.
  int64_t faults_injected() const;

  /// Optional metrics registry receiving RecordInjectedFault() events.
  void set_metrics(RpcMetrics* metrics) { metrics_ = metrics; }

  /// Deterministic membership-chaos hook: invoked at the start of every
  /// Post() with a monotonically increasing 1-based serial (NOT reset by
  /// set_fault_profile), before any network lock is taken — so the hook may
  /// call back into DisconnectPeer / RegisterPeer / set_fault_profile to
  /// mutate membership at an exact point of the request schedule. The
  /// mutation takes effect for the very Post carrying the serial.
  using PostHook = std::function<void(int64_t serial)>;
  void set_post_hook(PostHook hook) { post_hook_ = std::move(hook); }

  StatusOr<PostResult> Post(const std::string& dest_uri,
                            const std::string& body) override;

  /// Parallel fan-out group (Transport protocol): while a group is open the
  /// per-Post wire costs do NOT each advance the virtual clock; instead
  /// every Post is modeled as starting at the group's opening instant, and
  /// EndParallelGroup moves the clock to the latest per-Post completion —
  /// i.e. the group costs max-over-destinations, matching real parallel
  /// dispatch. Groups nest (a handler's own fan-out during an outer group
  /// folds into the outer one); only the outermost End advances the clock.
  void BeginParallelGroup() override;
  void EndParallelGroup() override;

  /// Simulated network statistics.
  int64_t messages_sent() const { return messages_; }
  int64_t bytes_sent() const { return bytes_sent_; }
  int64_t bytes_received() const { return bytes_received_; }
  VirtualClock& clock() { return clock_; }
  const NetworkProfile& profile() const { return profile_; }
  void set_profile(NetworkProfile profile) { profile_ = profile; }

  void ResetStats();

 private:
  /// Advances the virtual clock for one Post of modeled cost `cost_us`:
  /// directly when no parallel group is open, else by folding the Post's
  /// completion instant into the group maximum. mu_ must be held.
  void AdvanceForPostLocked(int64_t cost_us);

  NetworkProfile profile_;
  std::map<std::string, SoapEndpoint*> peers_;  // keyed by host:port
  VirtualClock clock_;
  int64_t messages_ = 0;
  int64_t bytes_sent_ = 0;
  int64_t bytes_received_ = 0;
  std::deque<Status> injected_failures_;
  FaultProfile fault_profile_;
  DeterministicPrng fault_prng_;
  int64_t fault_serial_ = 0;  ///< Post() count since set_fault_profile
  std::atomic<int64_t> post_serial_{0};  ///< lifetime Post() count (hook arg)
  PostHook post_hook_;
  int64_t faults_injected_ = 0;
  int parallel_depth_ = 0;        ///< open BeginParallelGroup nesting level
  int64_t group_start_us_ = 0;    ///< clock reading at the outermost Begin
  int64_t group_max_end_us_ = 0;  ///< latest modeled completion in the group
  RpcMetrics* metrics_ = nullptr;
  mutable std::mutex mu_;
};

}  // namespace xrpc::net

#endif  // XRPC_NET_SIMULATED_NETWORK_H_
