#ifndef XRPC_NET_URI_H_
#define XRPC_NET_URI_H_

#include <string>
#include <string_view>

#include "base/statusor.h"

namespace xrpc::net {

/// Default port of the XRPC SOAP/HTTP service.
inline constexpr int kDefaultXrpcPort = 50001;

/// RFC 3986 percent-decoding: every "%xx" (two hex digits, either case)
/// becomes its octet. A '%' not followed by two hex digits is malformed
/// and rejected — silently passing it through would make encoding
/// ambiguous ("%2541" could mean "%41" or "%2541").
StatusOr<std::string> PercentDecode(std::string_view s);

/// Percent-encodes a URI path for the wire: RFC 3986 unreserved characters
/// (ALPHA / DIGIT / "-" / "." / "_" / "~"), the path separator '/', and
/// the pchar extras (":@" and sub-delims) pass through; everything else —
/// including '%' itself, spaces, '?' and '#' — is emitted as "%XX".
/// PercentDecode(PercentEncodePath(p)) == p for every p.
std::string PercentEncodePath(std::string_view path);

/// A parsed xrpc:// destination: xrpc://<host>[:port][/[path]].
/// `host` and `path` hold DECODED text; ToString() re-encodes.
struct XrpcUri {
  std::string host;
  int port = kDefaultXrpcPort;
  std::string path;  ///< optional local path at the remote peer ("" if none)

  /// Canonical "host:port" peer key used for registry lookups.
  std::string PeerKey() const { return host + ":" + std::to_string(port); }

  /// Re-renders the URI, percent-encoding the path.
  std::string ToString() const;
};

/// Parses an xrpc:// URI, percent-decoding host and path. Bare "host" or
/// "host:port" strings (as used in the paper's examples, e.g. execute at
/// {"B"}) are accepted as host names. Malformed "%xx" escapes are
/// rejected.
StatusOr<XrpcUri> ParseXrpcUri(std::string_view uri);

}  // namespace xrpc::net

#endif  // XRPC_NET_URI_H_
