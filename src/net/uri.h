#ifndef XRPC_NET_URI_H_
#define XRPC_NET_URI_H_

#include <string>
#include <string_view>

#include "base/statusor.h"

namespace xrpc::net {

/// Default port of the XRPC SOAP/HTTP service.
inline constexpr int kDefaultXrpcPort = 50001;

/// A parsed xrpc:// destination: xrpc://<host>[:port][/[path]].
struct XrpcUri {
  std::string host;
  int port = kDefaultXrpcPort;
  std::string path;  ///< optional local path at the remote peer ("" if none)

  /// Canonical "host:port" peer key used for registry lookups.
  std::string PeerKey() const { return host + ":" + std::to_string(port); }

  /// Re-renders the URI.
  std::string ToString() const;
};

/// Parses an xrpc:// URI. Bare "host" or "host:port" strings (as used in
/// the paper's examples, e.g. execute at {"B"}) are accepted as host names.
StatusOr<XrpcUri> ParseXrpcUri(std::string_view uri);

}  // namespace xrpc::net

#endif  // XRPC_NET_URI_H_
