#include "xmark/xmark.h"

#include "core/catalog.h"

namespace xrpc::xmark {

namespace {

/// Small deterministic PRNG (xorshift-multiply LCG); no global state so
/// generation is reproducible across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 2654435761u + 1) {}

  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

  /// Uniform value in [0, n).
  uint64_t Below(uint64_t n) { return Next() % n; }

 private:
  uint64_t state_;
};

const char* kFirstNames[] = {"Kasidit",  "Jaak",   "Cong",   "Mehrdad",
                             "Huei",     "Juliana", "Sanjay", "Marit",
                             "Takahiro", "Adena"};
const char* kLastNames[] = {"Treweek",  "Tempesti", "Morvan", "Sahraoui",
                            "Chuang",   "Freire",   "Jain",   "Flood",
                            "Nishizawa", "Huff"};
const char* kCities[] = {"Amsterdam", "Vienna",   "Utrecht", "Rotterdam",
                         "Delft",     "Eindhoven", "Leiden",  "Haarlem"};
const char* kWords[] = {"elegant", "auction", "vintage", "pristine",
                        "antique", "gadget",  "bargain", "collectible",
                        "rare",    "quality"};

std::string PersonName(Rng* rng) {
  return std::string(kFirstNames[rng->Below(10)]) + " " +
         kLastNames[rng->Below(10)];
}

std::string AnnotationText(Rng* rng, int bytes) {
  std::string out;
  while (static_cast<int>(out.size()) < bytes) {
    if (!out.empty()) out += " ";
    out += kWords[rng->Below(10)];
  }
  return out;
}

}  // namespace

std::vector<std::string> GeneratePersonsFragments(const XmarkConfig& config,
                                                  int num_shards) {
  if (num_shards < 1) num_shards = 1;
  Rng rng(config.seed);
  std::vector<std::string> out(static_cast<size_t>(num_shards));
  for (std::string& f : out) {
    f.reserve(static_cast<size_t>(config.num_persons) * 160 /
                  static_cast<size_t>(num_shards) +
              64);
    f += "<site><people>";
  }
  for (int i = 0; i < config.num_persons; ++i) {
    std::string id = "person" + std::to_string(i);
    // One shared generation stream regardless of num_shards: the element
    // bytes never depend on the shard count, only their placement does.
    std::string& f =
        out[core::ShardHash(id) % static_cast<uint64_t>(num_shards)];
    f += "<person id=\"" + id + "\">";
    f += "<name>" + PersonName(&rng) + "</name>";
    f += "<emailaddress>mailto:" + id + "@example.org</emailaddress>";
    f += "<address><city>" + std::string(kCities[rng.Below(8)]) +
         "</city></address>";
    f += "</person>";
  }
  for (std::string& f : out) f += "</people></site>";
  return out;
}

std::string GeneratePersons(const XmarkConfig& config) {
  return GeneratePersonsFragments(config, 1)[0];
}

std::vector<std::string> GenerateAuctionsFragments(const XmarkConfig& config,
                                                   int num_shards) {
  if (num_shards < 1) num_shards = 1;
  const uint64_t n = static_cast<uint64_t>(num_shards);
  Rng rng(config.seed + 1);
  std::vector<std::string> out(static_cast<size_t>(num_shards));
  for (std::string& f : out) {
    f.reserve(static_cast<size_t>(config.num_closed_auctions) *
                  (160 + static_cast<size_t>(config.annotation_bytes)) /
                  static_cast<size_t>(num_shards) +
              1024);
    f += "<site>";
    f += "<regions><europe>";
  }
  for (int i = 0; i < config.num_items; ++i) {
    std::string id = "item" + std::to_string(i);
    std::string& f = out[core::ShardHash(id) % n];
    f += "<item id=\"" + id + "\"><name>" +
         std::string(kWords[rng.Below(10)]) + " " +
         std::string(kWords[rng.Below(10)]) + "</name>";
    if (config.item_description_bytes > 0) {
      f += "<description>" +
           AnnotationText(&rng, config.item_description_bytes) +
           "</description>";
    }
    f += "</item>";
  }
  for (std::string& f : out) {
    f += "</europe></regions>";
    f += "<open_auctions>";
  }
  for (int i = 0; i < config.num_open_auctions; ++i) {
    std::string id = "open_auction" + std::to_string(i);
    std::string& f = out[core::ShardHash(id) % n];
    f += "<open_auction id=\"" + id + "\">";
    f += "<current>" + std::to_string(10 + rng.Below(490)) + "</current>";
    f += "<itemref item=\"item" +
         std::to_string(rng.Below(
             static_cast<uint64_t>(config.num_items > 0 ? config.num_items
                                                        : 1))) +
         "\"/>";
    if (config.item_description_bytes > 0) {
      f += "<annotation><description>" +
           AnnotationText(&rng, config.item_description_bytes) +
           "</description></annotation>";
    }
    f += "</open_auction>";
  }
  for (std::string& f : out) {
    f += "</open_auctions>";
    f += "<closed_auctions>";
  }
  for (int i = 0; i < config.num_closed_auctions; ++i) {
    // The first num_matches auctions reference generated persons spread
    // over the id space; the rest reference ids outside it (no match).
    std::string buyer;
    if (i < config.num_matches && config.num_persons > 0) {
      int pid = static_cast<int>(
          (static_cast<int64_t>(i) * config.num_persons) /
          (config.num_matches > 0 ? config.num_matches : 1));
      buyer = "person" + std::to_string(pid % config.num_persons);
    } else {
      buyer = "person" + std::to_string(config.num_persons + i);
    }
    // Closed auctions partition on the buyer — the routable key of the
    // Q_B3-style semijoin — so one buyer's auctions always colocate.
    std::string& f = out[core::ShardHash(buyer) % n];
    f += "<closed_auction>";
    f += "<seller person=\"person" +
         std::to_string(config.num_persons + 100000 + i) + "\"/>";
    f += "<buyer person=\"" + buyer + "\"/>";
    f += "<itemref item=\"item" +
         std::to_string(rng.Below(
             static_cast<uint64_t>(config.num_items > 0 ? config.num_items
                                                        : 1))) +
         "\"/>";
    f += "<price>" + std::to_string(5 + rng.Below(995)) + "</price>";
    f += "<annotation><description>" +
         AnnotationText(&rng, config.annotation_bytes) +
         "</description></annotation>";
    f += "</closed_auction>";
  }
  for (std::string& f : out) f += "</closed_auctions></site>";
  return out;
}

std::string GenerateAuctions(const XmarkConfig& config) {
  return GenerateAuctionsFragments(config, 1)[0];
}

std::string GenerateFilmDb(int extra, uint64_t seed) {
  Rng rng(seed);
  std::string out = "<films>";
  out +=
      "<film><name>The Rock</name><actor>Sean Connery</actor></film>"
      "<film><name>Goldfinger</name><actor>Sean Connery</actor></film>"
      "<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>";
  for (int i = 0; i < extra; ++i) {
    out += "<film><name>" + std::string(kWords[rng.Below(10)]) + " " +
           std::to_string(i) + "</name><actor>" + PersonName(&rng) +
           "</actor></film>";
  }
  out += "</films>";
  return out;
}

std::string TestModuleSource() {
  return R"(
module namespace tst = "test";
declare function tst:echoVoid() { () };
declare function tst:echo($x as item()*) as item()* { $x };
declare function tst:echoDoc($name as xs:string) as node()*
{ doc($name)/* };
declare function tst:makePayload($n as xs:integer) as node()
{ <payload>{for $i in 1 to $n return <row>{$i}</row>}</payload> };
)";
}

std::string FunctionsBModuleSource(const std::string& peer_a_uri) {
  return R"(
module namespace b = "functions_b";
declare function b:Q_B1() as node()*
{ doc("auctions.xml")//closed_auction };
declare function b:Q_B2() as node()*
{ for $p in doc(")" +
         peer_a_uri + R"(/persons.xml")//person,
      $ca in doc("auctions.xml")//closed_auction
  where $p/@id = $ca/buyer/@person
  return <result>{$p, $ca/annotation}</result>
};
declare function b:Q_B3($pid as xs:string) as node()*
{ doc("auctions.xml")//closed_auction[./buyer/@person=$pid] };
)";
}

std::string FilmModuleSource() {
  return R"(
module namespace film = "films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor=$actor] };
)";
}

std::string GetPersonModuleSource() {
  return R"(
module namespace func = "functions";
declare function func:getPerson($doc as xs:string, $pid as xs:string)
  as node()?
{ zero-or-one(doc($doc)//person[@id=$pid]) };
)";
}

}  // namespace xrpc::xmark
