#ifndef XRPC_XMARK_SHARD_LOADER_H_
#define XRPC_XMARK_SHARD_LOADER_H_

#include <string>
#include <vector>

#include "core/peer_network.h"
#include "xmark/xmark.h"

namespace xrpc::xmark {

/// Options of LoadShardedXmark.
struct ShardLoadOptions {
  int num_shards = 4;
  /// Engine of the shard peers. Interpreter is the lightweight default for
  /// many-peer simulations; relational peers exercise the loop-lifted
  /// server path.
  core::EngineKind engine = core::EngineKind::kInterpreter;
  /// Shard peers are named "<peer_prefix>0" .. "<peer_prefix>N-1".
  std::string peer_prefix = "shard";
  /// Total copies of every fragment, primary included. Copy r of shard k
  /// (r = 1 .. replication_factor-1) is materialized at peer (k+r) mod
  /// num_shards under the SAME fragment name and listed in the catalog's
  /// replica set, so read-only subcalls can fail over to it when the
  /// primary is unreachable (DESIGN.md §14). Clamped to num_shards;
  /// 1 = no replication (the previous behavior).
  int replication_factor = 1;
};

/// Handles to the loaded deployment.
struct ShardLoadResult {
  std::vector<core::Peer*> peers;  ///< shard k's peer at index k
  /// Logical destination of the auctions collection ("shard:auctions.xml").
  std::string auctions_uri;
  std::string persons_uri;  ///< likewise for persons.xml
};

/// Creates `num_shards` peers on `net`, partitions the XMark documents
/// over them with the fragment generators (persons by @id, closed
/// auctions by buyer/@person — core::ShardHash on both sides), loads
/// fragment k at peer k as "<name>.<k>", registers the functions_b module
/// at every shard peer, and records both collections in the network's
/// catalog: hash-partitioned, with route_param 0 (a Q_B3-style call
/// carrying the person id as its first argument prunes to one shard).
StatusOr<ShardLoadResult> LoadShardedXmark(core::PeerNetwork* net,
                                           const XmarkConfig& config,
                                           const ShardLoadOptions& options = {});

}  // namespace xrpc::xmark

#endif  // XRPC_XMARK_SHARD_LOADER_H_
