#include "xmark/shard_loader.h"

#include <algorithm>

#include "core/catalog.h"

namespace xrpc::xmark {

StatusOr<ShardLoadResult> LoadShardedXmark(core::PeerNetwork* net,
                                           const XmarkConfig& config,
                                           const ShardLoadOptions& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  const int n = options.num_shards;
  ShardLoadResult result;
  result.auctions_uri = core::Catalog::ShardUri("auctions.xml");
  result.persons_uri = core::Catalog::ShardUri("persons.xml");

  std::vector<std::string> auctions = GenerateAuctionsFragments(config, n);
  std::vector<std::string> persons = GeneratePersonsFragments(config, n);

  core::ShardedCollection auctions_map;
  auctions_map.name = "auctions.xml";
  auctions_map.kind = core::PartitionKind::kHash;
  auctions_map.partition_key = "buyer/@person";
  auctions_map.route_param = 0;
  core::ShardedCollection persons_map;
  persons_map.name = "persons.xml";
  persons_map.kind = core::PartitionKind::kHash;
  persons_map.partition_key = "@id";
  persons_map.route_param = 0;

  for (int k = 0; k < n; ++k) {
    std::string name = options.peer_prefix + std::to_string(k);
    core::Peer* peer = net->GetPeer(name);
    if (peer == nullptr) peer = net->AddPeer(name, options.engine);
    std::string auctions_doc = "auctions.xml." + std::to_string(k);
    std::string persons_doc = "persons.xml." + std::to_string(k);
    XRPC_RETURN_IF_ERROR(peer->AddDocument(auctions_doc, auctions[k]));
    XRPC_RETURN_IF_ERROR(peer->AddDocument(persons_doc, persons[k]));
    // The module bodies keep saying doc("auctions.xml"): the shard-aware
    // document resolution maps the logical name to the local fragment.
    XRPC_RETURN_IF_ERROR(
        peer->RegisterModule(FunctionsBModuleSource(peer->uri())));
    auctions_map.shards.push_back({k, peer->uri(), auctions_doc, 0, 0, {}});
    persons_map.shards.push_back({k, peer->uri(), persons_doc, 0, 0, {}});
    result.peers.push_back(peer);
  }

  // Replica placement: copy r of shard k goes to the peer r positions
  // after the primary in ring order, same fragment names — so a replica
  // serves a shard-scoped subcall byte-identically to the primary.
  const int copies =
      std::min(std::max(options.replication_factor, 1), n);
  for (int k = 0; k < n; ++k) {
    for (int r = 1; r < copies; ++r) {
      core::Peer* replica = result.peers[(k + r) % n];
      XRPC_RETURN_IF_ERROR(replica->AddDocument(
          auctions_map.shards[k].doc_name, auctions[k]));
      XRPC_RETURN_IF_ERROR(replica->AddDocument(
          persons_map.shards[k].doc_name, persons[k]));
      auctions_map.shards[k].replicas.push_back(replica->uri());
      persons_map.shards[k].replicas.push_back(replica->uri());
    }
  }

  XRPC_RETURN_IF_ERROR(
      net->catalog().RegisterCollection(std::move(auctions_map)));
  XRPC_RETURN_IF_ERROR(
      net->catalog().RegisterCollection(std::move(persons_map)));
  return result;
}

}  // namespace xrpc::xmark
