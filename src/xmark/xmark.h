#ifndef XRPC_XMARK_XMARK_H_
#define XRPC_XMARK_XMARK_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xrpc::xmark {

/// Deterministic XMark-style data generator.
///
/// The Section 5 experiments distribute an XMark document over two peers:
/// "persons.xml" (all person elements) at peer A and "auctions.xml" (items
/// and open/closed auctions) at peer B, with closed auctions referencing
/// buyers by person id. This generator reproduces that split with
/// controllable sizes and join selectivity; given equal parameters it
/// always produces identical documents (seeded LCG, no global state).
struct XmarkConfig {
  int num_persons = 250;
  int num_closed_auctions = 4875;
  int num_open_auctions = 120;
  int num_items = 200;
  /// Exactly this many closed auctions reference generated persons (the
  /// paper's setup has 6 matches); the rest reference out-of-range ids.
  int num_matches = 6;
  /// Appended annotation text size per closed auction (scales document
  /// size the way XMark's description text does).
  int annotation_bytes = 64;
  /// Description text per item/open auction: content only data shipping
  /// pays for (it is not part of the closed_auction subset).
  int item_description_bytes = 0;
  uint64_t seed = 42;
};

/// Generates "persons.xml": <site><people><person id="personN">...</...>.
std::string GeneratePersons(const XmarkConfig& config);

/// Generates "auctions.xml": <site> with <open_auctions> and
/// <closed_auctions>; each closed_auction has buyer/@person, price,
/// itemref and an annotation with annotation text.
std::string GenerateAuctions(const XmarkConfig& config);

/// Sharded variants (DESIGN.md §13): the SAME generation stream as the
/// unsharded functions — every element is byte-identical and produced in
/// the same order — but each element lands in the fragment selected by
/// core::ShardHash of its partition key modulo `num_shards`:
/// persons by @id; items and open auctions by their own id; closed
/// auctions by buyer/@person (so a partition-key semijoin on the buyer
/// touches exactly one shard). Each fragment is a complete document with
/// the full <site> skeleton. With num_shards == 1 the single fragment
/// equals the unsharded document byte for byte.
std::vector<std::string> GeneratePersonsFragments(const XmarkConfig& config,
                                                  int num_shards);
std::vector<std::string> GenerateAuctionsFragments(const XmarkConfig& config,
                                                   int num_shards);

/// The film database of the paper's running example (Section 2), with
/// `extra` additional generated films.
std::string GenerateFilmDb(int extra = 0, uint64_t seed = 7);

/// An echo/test module equivalent to the paper's test.xq (echoVoid) plus
/// payload echo functions used by the throughput experiment.
std::string TestModuleSource();

/// The functions_b module of Section 5 (Q_B1, Q_B2, Q_B3) parameterized by
/// the persons-holding peer's URI (for Q_B2's execution relocation).
std::string FunctionsBModuleSource(const std::string& peer_a_uri);

/// The film.xq module of Section 2.
std::string FilmModuleSource();

/// The getPerson functions module of Section 4.
std::string GetPersonModuleSource();

}  // namespace xrpc::xmark

#endif  // XRPC_XMARK_XMARK_H_
