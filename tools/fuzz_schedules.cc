// Deterministic fault-schedule exploration CLI (DESIGN.md §11): runs the
// fixed two-destination 2PC update workload under an enumerated grid —
// and, past the grid, a seeded random sample — of SimulatedNetwork fault
// profiles x participant/coordinator crash points x retry policies, then
// checks four invariants after recovery (at-most-once, all-or-nothing,
// no in-doubt leaks, serial equivalence).
//
//   fuzz_schedules --seed 7 --count 1000
//   fuzz_schedules --seed 7 --count 400 --wal-dir /tmp/walfuzz
//   fuzz_schedules --replay sched-7-42.repro
//
// --chaos switches to the membership-chaos axis (DESIGN.md §14): the
// read-only broadcast workload over a replicated sharded deployment,
// under kill/revive/catalog-bump schedules, asserting byte-identity when
// surviving replicas cover every shard and one clean fault when not.
//
//   fuzz_schedules --chaos --seed 7 --count 500
//   fuzz_schedules --chaos --replay chaos-7-42.repro
//
// --chaos-elastic switches to the elastic-membership axis (DESIGN.md §16):
// peers joining/leaving mid-run, shard rebalance through catalog bumps,
// and partitions healing, asserting six invariants including no-lost-shard
// after quiesce. --sabotage here self-tests the no-lost-shard detector.
//
//   fuzz_schedules --chaos-elastic --seed 7 --count 500
//   fuzz_schedules --chaos-elastic --replay elastic-7-42.repro
//
// --updates (with --chaos or --chaos-elastic) arms the mid-schedule
// updating broadcast (DESIGN.md §17): an all-copies 2PC write races the
// kills/joins/rebalances, reads must match the updated baseline iff it
// committed, and after quiesce+repair every replica must be byte-identical
// to the chaos-free serial state. --sabotage-write (with --chaos)
// self-tests that convergence detector with a primary-only direct write.
//
//   fuzz_schedules --chaos --updates --seed 7 --count 500
//   fuzz_schedules --chaos --updates --sabotage-write --count 20
//   fuzz_schedules --chaos-elastic --updates --seed 7 --count 200
//
// Exit status: 0 = every schedule satisfied all invariants; 1 = at least
// one violation (repro file written); 2 = usage / replay input error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/chaos.h"
#include "fuzz/schedule.h"

namespace {

using xrpc::fuzz::ChaosConfig;
using xrpc::fuzz::ChaosExplorer;
using xrpc::fuzz::ChaosResult;
using xrpc::fuzz::ElasticChaosExplorer;
using xrpc::fuzz::ElasticConfig;
using xrpc::fuzz::ElasticResult;
using xrpc::fuzz::Schedule;
using xrpc::fuzz::ScheduleConfig;
using xrpc::fuzz::ScheduleExplorer;
using xrpc::fuzz::ScheduleResult;

int Usage() {
  std::fprintf(
      stderr,
      "usage: fuzz_schedules [--chaos|--chaos-elastic] [--seed N] [--count N]\n"
      "                      [--wal-dir DIR] [--out-dir DIR] [--updates]\n"
      "                      [--sabotage] [--sabotage-write] [--verbose]\n"
      "       fuzz_schedules [--chaos|--chaos-elastic] --replay FILE\n"
      "                      [--wal-dir DIR]\n");
  return 2;
}

void PrintElasticResult(const ElasticResult& r) {
  std::printf("elastic %d: %s\n", r.schedule.index,
              r.schedule.Describe().c_str());
  std::printf(
      "  queries_ok=%d queries_failed=%d events_fired=%d elapsed=%lldus "
      "failover=%lld reroutes=%lld\n",
      r.queries_ok, r.queries_failed, r.events_fired,
      static_cast<long long>(r.elapsed_us),
      static_cast<long long>(r.failover_successes),
      static_cast<long long>(r.stale_reroutes));
  for (const std::string& v : r.violations) {
    std::printf("  VIOLATION %s\n", v.c_str());
  }
}

int RunElastic(const ElasticConfig& config, int count, bool verbose,
               const std::string& out_dir, const std::string& replay_path) {
  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::fprintf(stderr, "fuzz_schedules: cannot open %s\n",
                   replay_path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    auto parsed = xrpc::fuzz::ParseElasticRepro(buf.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "fuzz_schedules: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    ElasticConfig replay_config = config;
    replay_config.seed = parsed.value().seed;
    ElasticChaosExplorer explorer(replay_config);
    ElasticResult r =
        explorer.RunSchedule(explorer.MakeSchedule(parsed.value().index));
    PrintElasticResult(r);
    return r.ok ? 0 : 1;
  }

  ElasticChaosExplorer explorer(config);
  int violations = 0;
  std::printf("fuzz_schedules --chaos-elastic: seed=%llu count=%d\n",
              static_cast<unsigned long long>(config.seed), count);
  for (int i = 0; i < count; ++i) {
    ElasticResult r = explorer.RunSchedule(explorer.MakeSchedule(i));
    if (verbose) PrintElasticResult(r);
    if (r.ok) continue;
    ++violations;
    if (!verbose) PrintElasticResult(r);
    const std::string path = out_dir + "/elastic-" +
                             std::to_string(r.schedule.seed) + "-" +
                             std::to_string(r.schedule.index) + ".repro";
    std::ofstream out(path);
    out << xrpc::fuzz::FormatElasticRepro(r);
    std::printf("  repro: %s\n", path.c_str());
  }
  const auto& s = explorer.stats();
  std::printf(
      "fuzz_schedules --chaos-elastic: explored=%lld queries_ok=%lld "
      "clean_faults=%lld events_fired=%lld failover=%lld reroutes=%lld "
      "updates_committed=%lld updates_aborted=%lld violations=%lld\n",
      static_cast<long long>(s.explored),
      static_cast<long long>(s.queries_ok),
      static_cast<long long>(s.clean_faults),
      static_cast<long long>(s.events_fired),
      static_cast<long long>(s.failover_successes),
      static_cast<long long>(s.stale_reroutes),
      static_cast<long long>(s.updates_committed),
      static_cast<long long>(s.updates_aborted),
      static_cast<long long>(s.violations));
  if (config.sabotage_lost_shard) {
    // Self-test mode: success means the no-lost-shard detector caught the
    // injected permanent partition.
    return violations > 0 ? 0 : 1;
  }
  return violations == 0 ? 0 : 1;
}

void PrintChaosResult(const ChaosResult& r) {
  std::printf("chaos %d: %s\n", r.schedule.index,
              r.schedule.Describe().c_str());
  std::printf("  %s elapsed=%lldus failover=%lld reroutes=%lld\n",
              r.query_ok ? "survived" : "faulted",
              static_cast<long long>(r.elapsed_us),
              static_cast<long long>(r.failover_successes),
              static_cast<long long>(r.stale_reroutes));
  for (const std::string& v : r.violations) {
    std::printf("  VIOLATION %s\n", v.c_str());
  }
}

int RunChaos(const ChaosConfig& config, int count, bool verbose,
             const std::string& out_dir, const std::string& replay_path) {
  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::fprintf(stderr, "fuzz_schedules: cannot open %s\n",
                   replay_path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    auto parsed = xrpc::fuzz::ParseChaosRepro(buf.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "fuzz_schedules: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    ChaosConfig replay_config = config;
    replay_config.seed = parsed.value().seed;
    ChaosExplorer explorer(replay_config);
    ChaosResult r =
        explorer.RunSchedule(explorer.MakeSchedule(parsed.value().index));
    PrintChaosResult(r);
    return r.ok ? 0 : 1;
  }

  ChaosExplorer explorer(config);
  int violations = 0;
  std::printf("fuzz_schedules --chaos: seed=%llu grid=%d count=%d\n",
              static_cast<unsigned long long>(config.seed),
              explorer.GridSize(), count);
  for (int i = 0; i < count; ++i) {
    ChaosResult r = explorer.RunSchedule(explorer.MakeSchedule(i));
    if (verbose) PrintChaosResult(r);
    if (r.ok) continue;
    ++violations;
    if (!verbose) PrintChaosResult(r);
    const std::string path = out_dir + "/chaos-" +
                             std::to_string(r.schedule.seed) + "-" +
                             std::to_string(r.schedule.index) + ".repro";
    std::ofstream out(path);
    out << xrpc::fuzz::FormatChaosRepro(r);
    std::printf("  repro: %s\n", path.c_str());
  }
  const auto& s = explorer.stats();
  std::printf(
      "fuzz_schedules --chaos: explored=%lld survived=%lld clean_faults=%lld "
      "failover=%lld reroutes=%lld updates_committed=%lld "
      "updates_aborted=%lld violations=%lld\n",
      static_cast<long long>(s.explored), static_cast<long long>(s.survived),
      static_cast<long long>(s.clean_faults),
      static_cast<long long>(s.failover_successes),
      static_cast<long long>(s.stale_reroutes),
      static_cast<long long>(s.updates_committed),
      static_cast<long long>(s.updates_aborted),
      static_cast<long long>(s.violations));
  if (config.sabotage_divergence || config.sabotage_primary_only_write) {
    return violations > 0 ? 0 : 1;
  }
  return violations == 0 ? 0 : 1;
}

void PrintResult(const ScheduleResult& r) {
  std::printf("schedule %d: %s\n", r.schedule.index,
              r.schedule.Describe().c_str());
  std::printf("  outcome=%s delta_y=%d delta_z=%d\n",
              r.committed_known ? (r.committed ? "committed" : "aborted")
                                : "unknown",
              r.delta_y, r.delta_z);
  for (const std::string& v : r.violations) {
    std::printf("  VIOLATION %s\n", v.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  ScheduleConfig config;
  int count = 1000;
  bool verbose = false;
  bool chaos = false;
  bool chaos_elastic = false;
  bool with_updates = false;
  bool sabotage_write = false;
  std::string out_dir = ".";
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--chaos") {
      chaos = true;
    } else if (arg == "--chaos-elastic") {
      chaos_elastic = true;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--count") {
      const char* v = next();
      if (v == nullptr) return Usage();
      count = std::atoi(v);
    } else if (arg == "--wal-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.wal_dir = v;
    } else if (arg == "--out-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      out_dir = v;
    } else if (arg == "--sabotage") {
      config.sabotage_double_apply = true;
    } else if (arg == "--sabotage-write") {
      sabotage_write = true;
    } else if (arg == "--updates") {
      with_updates = true;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return Usage();
      replay_path = v;
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      return Usage();
    }
  }

  if (chaos_elastic) {
    ElasticConfig elastic_config;
    elastic_config.seed = config.seed;
    elastic_config.sabotage_lost_shard = config.sabotage_double_apply;
    elastic_config.with_updates = with_updates;
    return RunElastic(elastic_config, count, verbose, out_dir, replay_path);
  }

  if (chaos) {
    ChaosConfig chaos_config;
    chaos_config.seed = config.seed;
    chaos_config.sabotage_divergence = config.sabotage_double_apply;
    chaos_config.with_updates = with_updates;
    chaos_config.sabotage_primary_only_write = sabotage_write;
    return RunChaos(chaos_config, count, verbose, out_dir, replay_path);
  }

  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::fprintf(stderr, "fuzz_schedules: cannot open %s\n",
                   replay_path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    auto parsed = xrpc::fuzz::ParseScheduleRepro(buf.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "fuzz_schedules: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    config.seed = parsed.value().seed;
    ScheduleExplorer explorer(config);
    // The repro carries (seed, index); the schedule itself is re-derived —
    // MakeSchedule is a pure function of the pair, so the replay runs the
    // byte-identical fault schedule. (--wal-dir must match the original
    // run for schedules in the durable-WAL dimension.)
    ScheduleResult r =
        explorer.RunSchedule(explorer.MakeSchedule(parsed.value().index));
    PrintResult(r);
    return r.ok ? 0 : 1;
  }

  ScheduleExplorer explorer(config);
  int violations = 0;
  std::printf("fuzz_schedules: seed=%llu grid=%d count=%d\n",
              static_cast<unsigned long long>(config.seed),
              explorer.GridSize(), count);
  for (int i = 0; i < count; ++i) {
    ScheduleResult r = explorer.RunSchedule(explorer.MakeSchedule(i));
    if (verbose) PrintResult(r);
    if (r.ok) continue;
    ++violations;
    if (!verbose) PrintResult(r);
    const std::string path = out_dir + "/sched-" +
                             std::to_string(r.schedule.seed) + "-" +
                             std::to_string(r.schedule.index) + ".repro";
    std::ofstream out(path);
    out << xrpc::fuzz::FormatScheduleRepro(r);
    std::printf("  repro: %s\n", path.c_str());
  }

  const auto& s = explorer.stats();
  std::printf(
      "fuzz_schedules: explored=%lld committed=%lld aborted=%lld "
      "in_doubt_seen=%lld violations=%lld\n",
      static_cast<long long>(s.explored), static_cast<long long>(s.committed),
      static_cast<long long>(s.aborted),
      static_cast<long long>(s.in_doubt_seen),
      static_cast<long long>(s.violations));
  if (config.sabotage_double_apply) {
    // Self-test mode: success means the detector caught the injected
    // double-apply.
    return violations > 0 ? 0 : 1;
  }
  return violations == 0 ? 0 : 1;
}
