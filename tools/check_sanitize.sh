#!/usr/bin/env bash
# Sanitizer gate for the transport and transaction layers: builds the
# tests under ThreadSanitizer (or the sanitizer given as $1) in a side
# build directory and runs the suites that exercise the HttpServer
# worker-pool / keep-alive threading paths, the parallel Bulk RPC
# dispatch paths, the concurrent WAL / 2PC crash-recovery paths, the
# sharded-collection scatter-gather paths (whose per-shard Bulk RPCs ride
# the parallel dispatch pool), plus the `failover` lane (replica failover,
# catalog epoch fencing, circuit-breaker probe races; DESIGN.md §14) and
# the `parallel` lane (the morsel-parallel executor's determinism tests at
# exec_threads in {1,2,8} — corpus, seeded-random, sharded scatter-gather
# and cancellation-under-parallelism; DESIGN.md §15), the `workload`
# lane (the open-loop multi-tenant driver and the elastic-membership
# chaos invariants; DESIGN.md §16), and the `repair` lane (replicated
# writes: all-copies 2PC, fragment data versioning, the StaleReplica
# fence and anti-entropy resync; DESIGN.md §17).
#
# Usage: tools/check_sanitize.sh [thread|address]
set -euo pipefail

SANITIZER="${1:-thread}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-$SANITIZER-san"

cmake -B "$BUILD" -S "$ROOT" -DXRPC_SANITIZE="$SANITIZER" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j
cd "$BUILD"
ctest --output-on-failure -j"$(nproc)" \
      -R 'HttpServer|HttpTransport|HttpPost|HttpIntegrationTest|Retry|FaultInjection|SimulatedNetwork|RpcMetrics|LatencyHistogram|Uri|BulkRetry|TxnLog|PulSerialization|TxnRecovery|ThreadPool|ParallelGroup|ParallelDispatch|RetryJitter|CancellationToken|CircuitBreaker|RetryingTransportDeadline|RetryingTransportBreaker|DeadlineChain|CatalogTest|ShardExecTest'
# The failover lane by label: replica failover + epoch fencing
# (failover_test) and the half-open probe races (circuit_breaker_test).
ctest --output-on-failure -j"$(nproc)" -L failover
# The parallel lane by label: morsel-executor byte-identity at multiple
# worker counts, the pool/TaskGroup exception paths, and prompt
# cancellation under parallel execution (DESIGN.md §15).
ctest --output-on-failure -j"$(nproc)" -L parallel
# The workload lane by label: open-loop driver determinism (the SLO
# report must stay byte-identical under TSan's scheduling perturbation)
# and the elastic no-lost-shard sabotage self-test (DESIGN.md §16).
ctest --output-on-failure -j"$(nproc)" -L workload
# The repair lane by label: the WAL-delta chain / fragment-digest units
# (repair_test), the lagging-copy fences and resync end-to-ends
# (failover_test) and the partition-heals-via-repair 2PC recovery paths
# (txn_recovery_test) — all of which race commit apply against reads
# (DESIGN.md §17).
ctest --output-on-failure -j"$(nproc)" -L repair
echo "sanitize($SANITIZER): OK"
