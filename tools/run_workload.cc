// Open-loop multi-tenant workload CLI (DESIGN.md §16): drives a simulated
// sharded fleet with Poisson arrivals on the virtual clock and prints the
// per-tenant SLO report. Fully deterministic by seed — two invocations
// with the same flags print byte-identical reports.
//
//   run_workload --shards 16 --rf 2 --duration-ms 2000
//                --tenant gold:200:0.1 --tenant batch:50:0 --chaos
//
// --tenant NAME:QPS[:UPDATE_FRACTION] may repeat; without it a default
// two-tenant mix (interactive reads + batch updates) is used.
//
// Exit status: 0 = run completed; 2 = usage / setup error.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "load/workload.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: run_workload [--seed N] [--shards N] [--rf N]\n"
      "                    [--duration-ms N] [--chaos] [--metrics]\n"
      "                    [--tenant NAME:QPS[:UPDATE_FRACTION]]...\n");
  return 2;
}

bool ParseTenant(const std::string& spec, xrpc::load::TenantSpec* out) {
  const size_t c1 = spec.find(':');
  if (c1 == std::string::npos || c1 == 0) return false;
  out->name = spec.substr(0, c1);
  const size_t c2 = spec.find(':', c1 + 1);
  const std::string qps =
      spec.substr(c1 + 1, c2 == std::string::npos ? std::string::npos
                                                  : c2 - c1 - 1);
  out->arrival_qps = std::atof(qps.c_str());
  if (out->arrival_qps <= 0) return false;
  if (c2 != std::string::npos) {
    out->update_fraction = std::atof(spec.c_str() + c2 + 1);
    if (out->update_fraction < 0 || out->update_fraction > 1) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  xrpc::load::WorkloadConfig config;
  bool print_metrics = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.num_shards = std::atoi(v);
    } else if (arg == "--rf") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.replication_factor = std::atoi(v);
    } else if (arg == "--duration-ms") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.duration_us = std::atoll(v) * 1000;
    } else if (arg == "--chaos") {
      config.chaos = true;
    } else if (arg == "--metrics") {
      print_metrics = true;
    } else if (arg == "--tenant") {
      const char* v = next();
      if (v == nullptr) return Usage();
      xrpc::load::TenantSpec spec;
      if (!ParseTenant(v, &spec)) {
        std::fprintf(stderr, "run_workload: bad --tenant spec '%s'\n", v);
        return Usage();
      }
      config.tenants.push_back(spec);
    } else {
      return Usage();
    }
  }
  if (config.num_shards < 1 || config.duration_us <= 0) return Usage();

  if (config.tenants.empty()) {
    xrpc::load::TenantSpec interactive;
    interactive.name = "interactive";
    interactive.arrival_qps = 120.0;
    interactive.point_fraction = 0.9;
    interactive.zipf_s = 1.0;
    xrpc::load::TenantSpec batch;
    batch.name = "batch";
    batch.arrival_qps = 30.0;
    batch.update_fraction = 0.5;
    batch.point_fraction = 0.2;
    batch.zipf_s = 0.5;
    config.tenants.push_back(interactive);
    config.tenants.push_back(batch);
  }

  auto report = xrpc::load::RunWorkload(config);
  if (!report.ok()) {
    std::fprintf(stderr, "run_workload: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  std::fputs(report->Format().c_str(), stdout);
  if (print_metrics) std::fputs(report->metrics_report.c_str(), stdout);
  return 0;
}
