// Cross-engine differential fuzzing CLI (DESIGN.md §11): generates seeded
// random XQuery over the XMark fixtures and runs every query on both the
// loop-lifted relational engine and the tree-walking interpreter, comparing
// sequence-normalized results (and, for updating queries, final document
// state). Divergences are minimized and dumped as self-contained repro
// files that replay deterministically.
//
//   fuzz_differential --seed 7 --count 500
//   fuzz_differential --seed 7 --count 20 --force-divergence   # self-test
//   fuzz_differential --replay diff-7-13.repro
//
// Exit status: 0 = no unexplained divergence (or, under
// --force-divergence, the forced divergence was caught, minimized and
// written); 1 = an unexplained divergence was found (repro file written);
// 2 = usage / replay input error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/differential.h"
#include "fuzz/generator.h"

namespace {

using xrpc::fuzz::Comparison;
using xrpc::fuzz::DifferentialConfig;
using xrpc::fuzz::DifferentialHarness;
using xrpc::fuzz::Divergence;
using xrpc::fuzz::GeneratedQuery;
using xrpc::fuzz::GeneratorConfig;
using xrpc::fuzz::QueryGenerator;

int Usage() {
  std::fprintf(stderr,
               "usage: fuzz_differential [--seed N] [--count N]\n"
               "                         [--update-ratio F] [--no-rpc]\n"
               "                         [--exec-threads N]\n"
               "                         [--force-divergence]\n"
               "                         [--out-dir DIR] [--verbose]\n"
               "       fuzz_differential --replay FILE\n");
  return 2;
}

int Replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fuzz_differential: cannot open %s\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = xrpc::fuzz::ParseReproFile(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "fuzz_differential: %s\n",
                 parsed.status().ToString().c_str());
    return 2;
  }
  const Divergence& d = parsed.value();
  DifferentialConfig config;
  config.force_divergence = d.force;
  DifferentialHarness harness(config);
  Comparison c = harness.Run(d.query, d.updating);
  std::printf("replay seed=%llu index=%d updating=%d\n",
              static_cast<unsigned long long>(d.seed), d.index,
              d.updating ? 1 : 0);
  std::printf("query:\n%s\n", d.query.c_str());
  std::printf("relational : %s\n", c.relational_result.c_str());
  std::printf("interpreter: %s\n", c.interpreter_result.c_str());
  if (c.skipped) {
    std::printf("verdict: SKIPPED (%s)\n", c.skip_reason.c_str());
    return 0;
  }
  std::printf("verdict: %s\n", c.agree ? "AGREE" : "DIVERGE");
  return c.agree ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  GeneratorConfig gcfg;
  DifferentialConfig dcfg;
  int count = 500;
  bool verbose = false;
  std::string out_dir = ".";
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      gcfg.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--count") {
      const char* v = next();
      if (v == nullptr) return Usage();
      count = std::atoi(v);
    } else if (arg == "--update-ratio") {
      const char* v = next();
      if (v == nullptr) return Usage();
      gcfg.update_ratio = std::atof(v);
    } else if (arg == "--no-rpc") {
      gcfg.allow_rpc = false;
    } else if (arg == "--exec-threads") {
      const char* v = next();
      if (v == nullptr) return Usage();
      dcfg.exec_threads = std::atoi(v);
    } else if (arg == "--force-divergence") {
      dcfg.force_divergence = true;
    } else if (arg == "--out-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      out_dir = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return Usage();
      replay_path = v;
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      return Usage();
    }
  }
  if (!replay_path.empty()) return Replay(replay_path);

  QueryGenerator gen(gcfg);
  DifferentialHarness harness(dcfg);
  int divergences = 0;
  for (int i = 0; i < count; ++i) {
    GeneratedQuery q = gen.Next();
    if (verbose) {
      std::printf("-- query %d --\n%s\n", i, q.Text().c_str());
    }
    Divergence d;
    if (!harness.RunAndMinimize(&q, &d)) continue;
    ++divergences;
    const std::string path = out_dir + "/diff-" + std::to_string(d.seed) +
                             "-" + std::to_string(d.index) + ".repro";
    std::ofstream out(path);
    out << xrpc::fuzz::FormatReproFile(d);
    std::printf("DIVERGENCE at query %d (minimized, repro: %s)\n", d.index,
                path.c_str());
    std::printf("  query      : %s\n", d.query.c_str());
    std::printf("  relational : %s\n",
                d.comparison.relational_result.c_str());
    std::printf("  interpreter: %s\n",
                d.comparison.interpreter_result.c_str());
  }

  const auto& s = harness.stats();
  std::printf(
      "fuzz_differential: seed=%llu executed=%lld agreed=%lld "
      "diverged=%lld skipped=%lld both_error=%lld fell_back=%lld "
      "updating=%lld\n",
      static_cast<unsigned long long>(gcfg.seed),
      static_cast<long long>(s.executed), static_cast<long long>(s.agreed),
      static_cast<long long>(s.diverged), static_cast<long long>(s.skipped),
      static_cast<long long>(s.both_error),
      static_cast<long long>(s.fell_back),
      static_cast<long long>(s.updating));
  if (dcfg.force_divergence) {
    // Self-test mode: success means the pipeline caught and minimized at
    // least one (artificial) divergence.
    return divergences > 0 ? 0 : 1;
  }
  return divergences == 0 ? 0 : 1;
}
