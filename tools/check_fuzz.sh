#!/usr/bin/env bash
# Budgeted fuzz smoke lane (target: under 60 seconds on the normal build):
#
#  1. the ctest `fuzz` label — generator determinism, the differential
#     corpus, forced-divergence minimization/repro round-trips, and a
#     slice of the fault-schedule grid including the sabotage self-test;
#  2. a fixed-seed 200-query differential campaign on both engines
#     (fails on any unexplained divergence; repro files land in $OUT);
#  3. a fixed-seed 400-schedule fault exploration asserting the four 2PC
#     invariants (at-most-once, all-or-nothing, no in-doubt leaks,
#     serial equivalence);
#  4. an elastic-membership chaos smoke at seeds 1-3 (peers joining and
#     leaving mid-run, shard rebalances, partitions healing) asserting
#     the six chaos invariants including no-lost-shard;
#  5. the same elastic smoke with --updates: a mid-schedule updating
#     broadcast rides the all-copies 2PC, and after quiesce+repair every
#     catalog-listed copy of every fragment must be byte-identical to the
#     chaos-free serial state (replica-convergence, DESIGN.md §17).
#
# Long soak campaigns (thousands of queries/schedules, many seeds) run the
# same binaries by hand — see EXPERIMENTS.md.
#
# Usage: tools/check_fuzz.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

cmake -B "$BUILD" -S "$ROOT" > /dev/null
cmake --build "$BUILD" -j --target \
      fuzz_differential fuzz_schedules differential_corpus_test \
      fuzz_smoke_test > /dev/null

(cd "$BUILD" && ctest --output-on-failure -L fuzz -j"$(nproc)")

"$BUILD/tools/fuzz_differential" --seed 1 --count 200 --out-dir "$OUT"
"$BUILD/tools/fuzz_schedules" --seed 1 --count 400 --out-dir "$OUT" \
    --wal-dir "$OUT"
for seed in 1 2 3; do
  "$BUILD/tools/fuzz_schedules" --chaos-elastic --seed "$seed" --count 60 \
      --out-dir "$OUT"
done
for seed in 1 2; do
  "$BUILD/tools/fuzz_schedules" --chaos-elastic --updates --seed "$seed" \
      --count 30 --out-dir "$OUT"
done

echo "fuzz smoke: OK"
