// Section 5's distributed query strategies on the XMark split: the same
// join (Q7: persons x closed auctions) executed four ways — data shipping,
// predicate push-down, execution relocation, and the distributed
// semi-join — across a relational peer (A) and a wrapper peer (B).

#include <cstdio>

#include "core/peer_network.h"
#include "xmark/xmark.h"

namespace {

void Run(xrpc::core::PeerNetwork* net, const char* label,
         const std::string& query) {
  auto report = net->Execute("A", query);
  if (!report.ok()) {
    std::fprintf(stderr, "%-22s FAILED: %s\n", label,
                 report.status().ToString().c_str());
    return;
  }
  std::printf("%-22s results=%zu requests=%lld total=%.1f ms\n", label,
              report->result.size(),
              static_cast<long long>(report->requests_sent),
              static_cast<double>(report->wall_micros +
                                  report->network_micros) /
                  1000.0);
}

}  // namespace

int main() {
  using xrpc::core::EngineKind;
  xrpc::xmark::XmarkConfig cfg;
  cfg.num_persons = 100;
  cfg.num_closed_auctions = 300;
  cfg.num_matches = 6;

  xrpc::core::PeerNetwork net;
  xrpc::core::Peer* a = net.AddPeer("A", EngineKind::kRelational);
  xrpc::core::Peer* b = net.AddPeer("B", EngineKind::kWrapper);
  (void)a->AddDocument("persons.xml", xrpc::xmark::GeneratePersons(cfg));
  (void)b->AddDocument("auctions.xml", xrpc::xmark::GenerateAuctions(cfg));
  std::string module = xrpc::xmark::FunctionsBModuleSource("xrpc://A");
  (void)b->RegisterModule(module, "http://example.org/b.xq");
  (void)a->RegisterModule(module, "http://example.org/b.xq");

  std::printf(
      "Q7 on %d persons (peer A, relational) x %d closed auctions\n"
      "(peer B, wrapper/'Saxon'), %d matching buyers:\n\n",
      cfg.num_persons, cfg.num_closed_auctions, cfg.num_matches);

  const std::string import_b =
      "import module namespace b=\"functions_b\" at "
      "\"http://example.org/b.xq\";\n";

  Run(&net, "data shipping", R"(
      for $p in doc("persons.xml")//person,
          $ca in doc("xrpc://B/auctions.xml")//closed_auction
      where $p/@id = $ca/buyer/@person
      return <result>{$p, $ca/annotation}</result>)");

  Run(&net, "predicate push-down", import_b + R"(
      for $p in doc("persons.xml")//person,
          $ca in execute at {"xrpc://B"} {b:Q_B1()}
      where $p/@id = $ca/buyer/@person
      return <result>{$p, $ca/annotation}</result>)");

  Run(&net, "execution relocation",
      import_b + "execute at {\"xrpc://B\"} {b:Q_B2()}");

  Run(&net, "distributed semi-join", import_b + R"(
      for $p in doc("persons.xml")//person
      let $ca := execute at {"xrpc://B"} {b:Q_B3(string($p/@id))}
      return if (empty($ca)) then ()
             else <result>{$p, $ca/annotation}</result>)");

  std::printf(
      "\nThe semi-join ships only the person ids (one Bulk RPC with %d\n"
      "calls) and receives only the %d matching auctions back.\n",
      cfg.num_persons, cfg.num_matches);
  return 0;
}
