// Quickstart: the paper's first example (query Q1) in a dozen lines.
//
// Two XQuery peers share a film module; the local peer asks the remote one
// which films Sean Connery plays in, with `execute at` — the XRPC
// extension — doing the remote function application over SOAP.

#include <cstdio>

#include "core/peer_network.h"
#include "xmark/xmark.h"

int main() {
  using xrpc::core::EngineKind;
  using xrpc::core::PeerNetwork;

  // A network of two peers (simulated 1 Gb/s LAN).
  PeerNetwork net;
  net.AddPeer("p0.example.org");
  xrpc::core::Peer* y = net.AddPeer("y.example.org");

  // y stores the film database and serves the film.xq module.
  (void)y->AddDocument("filmDB.xml", xrpc::xmark::GenerateFilmDb());
  (void)y->RegisterModule(xrpc::xmark::FilmModuleSource(),
                          "http://x.example.org/film.xq");

  // Query Q1 from the paper.
  const char* q1 = R"(
    import module namespace f="films" at "http://x.example.org/film.xq";
    <films> {
      execute at {"xrpc://y.example.org"}
      {f:filmsByActor("Sean Connery")}
    } </films>)";

  auto report = net.Execute("p0.example.org", q1);
  if (!report.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("result:   %s\n",
              xrpc::xdm::SequenceToString(report->result).c_str());
  std::printf("requests: %lld (one SOAP XRPC round-trip)\n",
              static_cast<long long>(report->requests_sent));
  std::printf("engine:   %s at p0, loop-lifted Bulk RPC dispatch\n",
              report->used_relational ? "relational" : "interpreter");
  return 0;
}
