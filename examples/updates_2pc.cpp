// Distributed updates (Section 2.3): calling XQUF updating functions over
// XRPC under both isolation levels, including an atomic distributed commit
// through WS-AtomicTransaction-style 2PC — and an injected prepare failure
// showing the atomic abort.

#include <cstdio>

#include "core/peer_network.h"
#include "xmark/xmark.h"

namespace {

constexpr char kUpdModule[] = R"(
  module namespace film = "films";
  declare function film:filmsByActor($actor as xs:string) as node()*
  { doc("filmDB.xml")//name[../actor=$actor] };
  declare function film:countFilms() as xs:integer
  { count(doc("filmDB.xml")//film) };
  declare updating function film:addFilm($name as xs:string,
                                         $actor as xs:string)
  { insert nodes <film><name>{$name}</name><actor>{$actor}</actor></film>
    into doc("filmDB.xml")/films };
)";

int CountFilms(xrpc::core::PeerNetwork* net, const char* peer) {
  std::string q =
      "import module namespace f=\"films\" at \"film.xq\";\n"
      "execute at {\"xrpc://" +
      std::string(peer) + "\"} {f:countFilms()}";
  auto report = net->Execute("p0.example.org", q);
  if (!report.ok() || report->result.empty()) return -1;
  return static_cast<int>(report->result[0].atomic().AsInteger());
}

}  // namespace

int main() {
  using xrpc::core::EngineKind;
  xrpc::core::PeerNetwork net;
  xrpc::core::Peer* p0 = net.AddPeer("p0.example.org");
  xrpc::core::Peer* y = net.AddPeer("y.example.org");
  xrpc::core::Peer* z = net.AddPeer("z.example.org");
  // Every peer can resolve the module (p0 needs it to detect updating
  // functions at compile time and engage the 2PC machinery).
  for (xrpc::core::Peer* p : {p0, y, z}) {
    (void)p->AddDocument("filmDB.xml", xrpc::xmark::GenerateFilmDb());
    (void)p->RegisterModule(kUpdModule, "film.xq");
  }
  std::printf("films before:        y=%d z=%d\n", CountFilms(&net, "y.example.org"),
              CountFilms(&net, "z.example.org"));

  // 1. Immediate updates (isolation "none", rule RFu): each request's
  //    pending update list is applied as soon as the request is handled.
  auto r1 = net.Execute("p0.example.org", R"(
      import module namespace f="films" at "film.xq";
      execute at {"xrpc://y.example.org"} {f:addFilm("Dr. No", "Sean Connery")})");
  std::printf("immediate update:    %s, films y=%d\n",
              r1.ok() ? "applied" : r1.status().ToString().c_str(),
              CountFilms(&net, "y.example.org"));

  // 2. Atomic distributed update (isolation "repeatable", rule R'Fu):
  //    both peers defer their pending update lists until p0 commits via
  //    Prepare/Commit over WS-AT.
  auto r2 = net.Execute("p0.example.org", R"(
      declare option xrpc:isolation "repeatable";
      import module namespace f="films" at "film.xq";
      (execute at {"xrpc://y.example.org"} {f:addFilm("Thunderball", "Sean Connery")},
       execute at {"xrpc://z.example.org"} {f:addFilm("Mary Poppins", "Julie Andrews")}))");
  std::printf("2PC commit:          committed=%s, films y=%d z=%d\n",
              r2.ok() && r2->committed ? "true" : "false",
              CountFilms(&net, "y.example.org"), CountFilms(&net, "z.example.org"));

  // 3. Injected prepare failure at z: the whole distributed transaction
  //    aborts; neither peer applies anything.
  z->service().txn_log().FailNextAppend(
      xrpc::Status::TransactionError("stable log write failed"));
  auto r3 = net.Execute("p0.example.org", R"(
      declare option xrpc:isolation "repeatable";
      import module namespace f="films" at "film.xq";
      (execute at {"xrpc://y.example.org"} {f:addFilm("LOST-A", "Nobody")},
       execute at {"xrpc://z.example.org"} {f:addFilm("LOST-B", "Nobody")}))");
  std::printf("2PC abort:           committed=%s (%s)\n",
              r3.ok() && r3->committed ? "true" : "false",
              r3.ok() ? r3->abort_reason.c_str() : r3.status().ToString().c_str());
  std::printf("films after abort:   y=%d z=%d  (unchanged by the aborted txn)\n",
              CountFilms(&net, "y.example.org"), CountFilms(&net, "z.example.org"));
  return 0;
}
