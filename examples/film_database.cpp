// The full film-database scenario of Section 2: queries Q1, Q2, Q3 and Q6
// against multiple peers, showing how Bulk RPC batches the calls of a
// for-loop (one request per destination peer) while the final result stays
// in query order despite parallel, out-of-order execution.

#include <cstdio>

#include "core/peer_network.h"
#include "xmark/xmark.h"

namespace {

constexpr char kFilmDbY[] =
    "<films>"
    "<film><name>The Rock</name><actor>Sean Connery</actor></film>"
    "<film><name>Goldfinger</name><actor>Sean Connery</actor></film>"
    "<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>"
    "</films>";

constexpr char kFilmDbZ[] =
    "<films>"
    "<film><name>Sound Of Music</name><actor>Julie Andrews</actor></film>"
    "</films>";

void Run(xrpc::core::PeerNetwork* net, const char* label,
         const std::string& query) {
  auto report = net->Execute("p0.example.org", query);
  if (!report.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label,
                 report.status().ToString().c_str());
    return;
  }
  std::printf("%s\n  result:   %s\n  requests: %lld, network: %.2f ms\n\n",
              label, xrpc::xdm::SequenceToString(report->result).c_str(),
              static_cast<long long>(report->requests_sent),
              static_cast<double>(report->network_micros) / 1000.0);
}

}  // namespace

int main() {
  using xrpc::core::PeerNetwork;
  PeerNetwork net;
  net.AddPeer("p0.example.org");
  xrpc::core::Peer* y = net.AddPeer("y.example.org");
  xrpc::core::Peer* z = net.AddPeer("z.example.org");
  (void)y->AddDocument("filmDB.xml", kFilmDbY);
  (void)z->AddDocument("filmDB.xml", kFilmDbZ);
  (void)y->RegisterModule(xrpc::xmark::FilmModuleSource(),
                          "http://x.example.org/film.xq");
  (void)z->RegisterModule(xrpc::xmark::FilmModuleSource(),
                          "http://x.example.org/film.xq");

  const char* import_line =
      "import module namespace f=\"films\" at "
      "\"http://x.example.org/film.xq\";\n";

  Run(&net, "Q1 (single remote call)",
      std::string(import_line) + R"(
      <films> {
        execute at {"xrpc://y.example.org"}
        {f:filmsByActor("Sean Connery")}
      } </films>)");

  Run(&net, "Q2 (two calls, one peer -> ONE Bulk RPC request)",
      std::string(import_line) + R"(
      <films> {
        for $actor in ("Julie Andrews", "Sean Connery")
        let $dst := "xrpc://y.example.org"
        return execute at {$dst} {f:filmsByActor($actor)}
      } </films>)");

  Run(&net, "Q3 (four calls, two peers -> one Bulk RPC per peer)",
      std::string(import_line) + R"(
      <films> {
        for $actor in ("Julie Andrews", "Sean Connery")
        for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
        return execute at {$dst} {f:filmsByActor($actor)}
      } </films>)");

  Run(&net,
      "Q6 (two call sites -> two Bulk RPCs, out-of-order execution,\n"
      "    result restored to query order)",
      std::string(import_line) + R"(
      for $name in ("Julie", "Sean")
      let $connery := concat($name, " ", "Connery")
      let $andrews := concat($name, " ", "Andrews")
      return (
        execute at {"xrpc://y.example.org"} {f:filmsByActor($connery)},
        execute at {"xrpc://y.example.org"} {f:filmsByActor($andrews)} ))");
  return 0;
}
