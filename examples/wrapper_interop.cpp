// The XRPC wrapper (Section 4): a plain XQuery engine with no XRPC support
// serves Bulk RPC calls through a generated query. This example prints
// the actual Figure-3-style query the wrapper generates for a getPerson
// request, then runs a heterogeneous distributed query against it.

#include <cstdio>

#include "core/peer_network.h"
#include "xmark/xmark.h"

int main() {
  using xrpc::core::EngineKind;
  xrpc::core::PeerNetwork net;
  net.AddPeer("p0.example.org", EngineKind::kRelational);
  xrpc::core::Peer* saxon =
      net.AddPeer("saxon.example.org", EngineKind::kWrapper);

  xrpc::xmark::XmarkConfig cfg;
  cfg.num_persons = 50;
  (void)saxon->AddDocument("persons.xml", xrpc::xmark::GeneratePersons(cfg));
  (void)saxon->RegisterModule(xrpc::xmark::GetPersonModuleSource(),
                              "http://example.org/functions.xq");

  // A bulk getPerson: ten calls in one SOAP request; the wrapper turns
  // them into ONE generated XQuery query iterating over //xrpc:call.
  auto report = net.Execute("p0.example.org", R"(
      import module namespace func="functions"
        at "http://example.org/functions.xq";
      for $i in (0, 2, 4, 6, 8, 10, 12, 14, 16, 18)
      return execute at {"xrpc://saxon.example.org"}
             {func:getPerson("persons.xml", concat("person", string($i)))})");
  if (!report.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("== query the wrapper generated (cf. Figure 3) ==\n%s\n\n",
              saxon->wrapper_engine()->last_generated_query().c_str());

  std::printf("== results (%zu persons via one Bulk RPC request) ==\n",
              report->result.size());
  for (const auto& item : report->result) {
    std::printf("  %s\n", item.StringValue().c_str());
  }
  const auto& t = saxon->wrapper_engine()->last_timings();
  std::printf(
      "\nwrapper timings: treebuild=%.2f ms compile=%.2f ms exec=%.2f ms\n",
      static_cast<double>(t.treebuild_us) / 1000.0,
      static_cast<double>(t.compile_us) / 1000.0,
      static_cast<double>(t.exec_us) / 1000.0);
  return 0;
}
